// Immutable compressed-sparse-row graph used for bulk loading and by the
// synthetic dataset generators.

#ifndef BINGO_SRC_GRAPH_CSR_H_
#define BINGO_SRC_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/graph/types.h"

namespace bingo::graph {

class Csr {
 public:
  Csr() = default;

  // Builds from a directed edge-pair list. Self-loops are kept; duplicates
  // are kept unless `dedup` is set.
  static Csr FromPairs(VertexId num_vertices, const EdgePairList& pairs,
                       bool dedup = false);

  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  uint64_t NumEdges() const { return dsts_.size(); }

  // [begin, end) range into the dst array for vertex v.
  std::pair<uint64_t, uint64_t> Range(VertexId v) const {
    return {offsets_[v], offsets_[v + 1]};
  }

  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  VertexId Dst(uint64_t edge_index) const { return dsts_[edge_index]; }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {dsts_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  uint32_t MaxDegree() const;

 private:
  std::vector<uint64_t> offsets_;  // size NumVertices()+1
  std::vector<VertexId> dsts_;
};

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_CSR_H_
