// Synthetic graph generators (substitution S2 in DESIGN.md).
//
// The paper evaluates on five public power-law graphs (SNAP/Konect). In this
// offline environment the bench datasets are generated with R-MAT using the
// Graph500 parameters, which reproduces the skewed degree distributions that
// drive the paper's group composition and baseline O(d) behaviours.

#ifndef BINGO_SRC_GRAPH_GENERATORS_H_
#define BINGO_SRC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/types.h"
#include "src/util/rng.h"

namespace bingo::graph {

struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  double noise = 0.1;  // per-level parameter perturbation, avoids exact grids
};

// R-MAT with 2^scale vertices and `num_edges` directed edges.
EdgePairList GenerateRmat(int scale, uint64_t num_edges, util::Rng& rng,
                          const RmatParams& params = {});

// Erdős–Rényi G(n, m): m uniformly random directed edges.
EdgePairList GenerateUniform(VertexId num_vertices, uint64_t num_edges,
                             util::Rng& rng);

// Ring lattice where each vertex connects to its k successors; deterministic
// and useful for tests that need known degrees.
EdgePairList GenerateRing(VertexId num_vertices, uint32_t k);

// Appends the reverse of every edge (undirected expansion).
void MakeUndirected(EdgePairList& edges);

// Removes self loops and exact duplicates, in place.
void Canonicalize(EdgePairList& edges);

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_GENERATORS_H_
