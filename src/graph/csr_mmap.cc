#include "src/graph/csr_mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/util/checksum.h"
#include "src/util/fileio.h"
#include "src/util/serial.h"

namespace bingo::graph {

namespace {

using util::AppendPod;
using util::ReadPod;

constexpr uint64_t kCsrMagic = 0x42494e474f435231ULL;  // "BINGOCR1"
constexpr uint32_t kCsrVersion = 1;
constexpr std::size_t kCsrHeaderBytes = 64;
// Bytes covered by header_crc: everything before it, index_crc included.
constexpr std::size_t kCsrHeaderCrcSpan = kCsrHeaderBytes - 4;
constexpr std::size_t kCsrIoChunk = 1u << 20;

uint64_t PadTo16(uint64_t bytes) { return (bytes + 15) & ~uint64_t{15}; }

uint64_t RawIndexBytes(uint64_t num_vertices, uint64_t num_blocks) {
  return 8 * (num_vertices + 1) + 8 * num_vertices + 4 * (num_blocks + 1) +
         4 * num_blocks;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

CsrFileWriter::CsrFileWriter(std::string path, VertexId num_vertices,
                             uint64_t block_bytes_target)
    : path_(std::move(path)),
      side_path_(path_ + ".edges.tmp"),
      num_vertices_(num_vertices),
      block_bytes_target_(std::max<uint64_t>(block_bytes_target, sizeof(Edge))),
      degrees_(num_vertices, 0),
      totals_(num_vertices, 0.0) {
  side_ = std::fopen(side_path_.c_str(), "wb");
  ok_ = side_ != nullptr;
}

CsrFileWriter::~CsrFileWriter() {
  if (side_ != nullptr) {
    std::fclose(side_);
    side_ = nullptr;
  }
  if (!finished_) {
    std::remove(side_path_.c_str());
  }
}

void CsrFileWriter::Fail(std::string* error, const std::string& message) {
  ok_ = false;
  SetError(error, "csr writer: " + message);
}

bool CsrFileWriter::Append(VertexId src, const Edge& edge) {
  if (!ok_ || finished_) {
    ok_ = false;
    return false;
  }
  if (src >= num_vertices_ || src < last_src_) {
    ok_ = false;  // out of range, or not vertex-major
    return false;
  }
  last_src_ = src;
  if (std::fwrite(&edge, sizeof(Edge), 1, side_) != 1) {
    ok_ = false;
    return false;
  }
  degrees_[src]++;
  totals_[src] += edge.bias;
  ++num_edges_;
  return true;
}

bool CsrFileWriter::Finish(std::string* error) {
  if (finished_) {
    SetError(error, "csr writer: Finish called twice");
    return false;
  }
  finished_ = true;
  if (!ok_ || side_ == nullptr) {
    Fail(error, "append failed or side file unavailable");
    std::remove(side_path_.c_str());
    return false;
  }
  const bool side_ok = std::fclose(side_) == 0;
  side_ = nullptr;
  if (!side_ok) {
    Fail(error, "flushing side file failed");
    std::remove(side_path_.c_str());
    return false;
  }

  std::vector<uint64_t> offsets(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    offsets[v + 1] = offsets[v] + degrees_[v];
  }

  // Greedy block formation: consecutive vertices until the block's payload
  // reaches the target; every block holds at least one vertex.
  std::vector<VertexId> block_first;
  if (num_vertices_ > 0) {
    block_first.push_back(0);
    uint64_t acc = 0;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      acc += degrees_[v] * sizeof(Edge);
      if (acc >= block_bytes_target_ && v + 1 < num_vertices_) {
        block_first.push_back(v + 1);
        acc = 0;
      }
    }
    block_first.push_back(num_vertices_);
  }
  const uint64_t num_blocks =
      block_first.empty() ? 0 : block_first.size() - 1;

  // Second (and only re-)pass over the edge bytes: per-block CRCs.
  std::vector<uint32_t> block_crc(static_cast<std::size_t>(num_blocks), 0);
  std::FILE* side = std::fopen(side_path_.c_str(), "rb");
  if (side == nullptr) {
    Fail(error, "reopening side file failed");
    std::remove(side_path_.c_str());
    return false;
  }
  std::string chunk;
  bool crc_ok = true;
  for (uint64_t b = 0; b < num_blocks && crc_ok; ++b) {
    uint64_t remaining =
        (offsets[block_first[b + 1]] - offsets[block_first[b]]) * sizeof(Edge);
    uint32_t crc = 0;
    while (remaining > 0) {
      const std::size_t want =
          static_cast<std::size_t>(std::min<uint64_t>(remaining, kCsrIoChunk));
      chunk.resize(want);
      if (std::fread(chunk.data(), 1, want, side) != want) {
        crc_ok = false;
        break;
      }
      crc = util::Crc32c(chunk.data(), want, crc);
      remaining -= want;
    }
    block_crc[b] = crc;
  }
  if (!crc_ok) {
    std::fclose(side);
    Fail(error, "side file shorter than appended edge count");
    std::remove(side_path_.c_str());
    return false;
  }

  std::string index;
  index.reserve(static_cast<std::size_t>(
      PadTo16(RawIndexBytes(num_vertices_, num_blocks))));
  index.append(reinterpret_cast<const char*>(offsets.data()),
               offsets.size() * sizeof(uint64_t));
  index.append(reinterpret_cast<const char*>(totals_.data()),
               totals_.size() * sizeof(double));
  index.append(reinterpret_cast<const char*>(block_first.data()),
               block_first.size() * sizeof(VertexId));
  index.append(reinterpret_cast<const char*>(block_crc.data()),
               block_crc.size() * sizeof(uint32_t));
  index.resize(static_cast<std::size_t>(PadTo16(index.size())), '\0');
  const uint32_t index_crc = util::Crc32c(index.data(), index.size());

  std::string header;
  AppendPod(header, kCsrMagic);
  AppendPod(header, kCsrVersion);
  AppendPod(header, uint32_t{0});  // reserved
  AppendPod(header, static_cast<uint64_t>(num_vertices_));
  AppendPod(header, num_edges_);
  AppendPod(header, block_bytes_target_);
  AppendPod(header, num_blocks);
  AppendPod(header, static_cast<uint64_t>(index.size()));
  AppendPod(header, index_crc);
  AppendPod(header, util::Crc32c(header.data(), header.size()));

  util::AtomicFileWriter writer(path_);
  bool write_ok = writer.ok() && writer.Write(header.data(), header.size()) &&
                  writer.Write(index.data(), index.size());
  if (write_ok && std::fseek(side, 0, SEEK_SET) != 0) {
    write_ok = false;
  }
  uint64_t copied = 0;
  const uint64_t edge_bytes = num_edges_ * sizeof(Edge);
  while (write_ok && copied < edge_bytes) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<uint64_t>(edge_bytes - copied, kCsrIoChunk));
    chunk.resize(want);
    if (std::fread(chunk.data(), 1, want, side) != want ||
        !writer.Write(chunk.data(), want)) {
      write_ok = false;
      break;
    }
    copied += want;
  }
  std::fclose(side);
  if (!write_ok || !writer.Commit()) {
    Fail(error, "writing the container failed");
    std::remove(side_path_.c_str());
    return false;
  }
  std::remove(side_path_.c_str());
  return true;
}

bool WriteCsrFile(const std::string& path, VertexId num_vertices,
                  const WeightedEdgeList& edges, uint64_t block_bytes_target,
                  std::string* error) {
  WeightedEdgeList sorted = edges;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const WeightedEdge& a, const WeightedEdge& b) {
                     return a.src < b.src;
                   });
  CsrFileWriter writer(path, num_vertices, block_bytes_target);
  for (const WeightedEdge& e : sorted) {
    if (!writer.Append(e.src, Edge{e.dst, e.timestamp, e.bias})) {
      SetError(error, "csr writer: append failed (vertex out of range?)");
      return false;
    }
  }
  return writer.Finish(error);
}

CsrMmap::~CsrMmap() { Close(); }

CsrMmap::CsrMmap(CsrMmap&& other) noexcept { *this = std::move(other); }

CsrMmap& CsrMmap::operator=(CsrMmap&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    num_vertices_ = std::exchange(other.num_vertices_, 0);
    num_edges_ = std::exchange(other.num_edges_, 0);
    num_blocks_ = std::exchange(other.num_blocks_, 0);
    block_bytes_target_ = std::exchange(other.block_bytes_target_, 0);
    edge_section_offset_ = std::exchange(other.edge_section_offset_, 0);
    offsets_ = std::move(other.offsets_);
    totals_ = std::move(other.totals_);
    block_first_ = std::move(other.block_first_);
    block_crc_ = std::move(other.block_crc_);
  }
  return *this;
}

void CsrMmap::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t CsrMmap::IndexBytes() const {
  return offsets_.size() * sizeof(uint64_t) + totals_.size() * sizeof(double) +
         block_first_.size() * sizeof(VertexId) +
         block_crc_.size() * sizeof(uint32_t);
}

uint32_t CsrMmap::BlockOfVertex(VertexId v) const {
  // block_first_ is strictly increasing with front 0 and back V, so the
  // predecessor of the first entry > v is v's block.
  const auto it =
      std::upper_bound(block_first_.begin(), block_first_.end(), v);
  return static_cast<uint32_t>((it - block_first_.begin()) - 1);
}

bool CsrMmap::Open(const std::string& path, CsrMmap* out, std::string* error) {
  CsrMmap csr;
  csr.path_ = path;
  csr.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (csr.fd_ < 0) {
    SetError(error, "csr open: cannot open " + path);
    return false;
  }
  struct stat st {};
  if (::fstat(csr.fd_, &st) != 0 || st.st_size < 0) {
    SetError(error, "csr open: fstat failed");
    return false;
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < kCsrHeaderBytes) {
    SetError(error, "csr open: file smaller than the header");
    return false;
  }

  std::string header(kCsrHeaderBytes, '\0');
  if (::pread(csr.fd_, header.data(), header.size(), 0) !=
      static_cast<ssize_t>(header.size())) {
    SetError(error, "csr open: short header read");
    return false;
  }
  std::size_t off = 0;
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t reserved = 0;
  uint64_t num_vertices = 0;
  uint64_t index_bytes = 0;
  uint32_t index_crc = 0;
  uint32_t header_crc = 0;
  if (!ReadPod(header, off, magic) || !ReadPod(header, off, version) ||
      !ReadPod(header, off, reserved) || !ReadPod(header, off, num_vertices) ||
      !ReadPod(header, off, csr.num_edges_) ||
      !ReadPod(header, off, csr.block_bytes_target_) ||
      !ReadPod(header, off, csr.num_blocks_) ||
      !ReadPod(header, off, index_bytes) || !ReadPod(header, off, index_crc) ||
      !ReadPod(header, off, header_crc)) {
    SetError(error, "csr open: truncated header");
    return false;
  }
  if (magic != kCsrMagic) {
    SetError(error, "csr open: bad magic (not a CSR container)");
    return false;
  }
  if (version != kCsrVersion) {
    SetError(error, "csr open: unsupported version");
    return false;
  }
  if (header_crc != util::Crc32c(header.data(), kCsrHeaderCrcSpan)) {
    SetError(error, "csr open: header checksum mismatch");
    return false;
  }
  if (num_vertices > 0xFFFFFFFFull) {
    SetError(error, "csr open: vertex count exceeds the 32-bit id space");
    return false;
  }
  csr.num_vertices_ = static_cast<VertexId>(num_vertices);
  if (num_vertices == 0 ? (csr.num_blocks_ != 0 || csr.num_edges_ != 0)
                        : (csr.num_blocks_ == 0 ||
                           csr.num_blocks_ > num_vertices)) {
    SetError(error, "csr open: implausible block count");
    return false;
  }
  if (csr.num_edges_ > (uint64_t{1} << 58)) {
    SetError(error, "csr open: implausible edge count");
    return false;
  }
  if (index_bytes != PadTo16(RawIndexBytes(num_vertices, csr.num_blocks_))) {
    SetError(error, "csr open: index size does not match the header counts");
    return false;
  }
  csr.edge_section_offset_ = kCsrHeaderBytes + index_bytes;
  if (file_size !=
      csr.edge_section_offset_ + csr.num_edges_ * sizeof(Edge)) {
    SetError(error, "csr open: file size does not match the header "
                    "(truncated or corrupt container)");
    return false;
  }

  std::string index(static_cast<std::size_t>(index_bytes), '\0');
  uint64_t got = 0;
  while (got < index_bytes) {
    const ssize_t n = ::pread(csr.fd_, index.data() + got,
                              static_cast<std::size_t>(index_bytes - got),
                              static_cast<off_t>(kCsrHeaderBytes + got));
    if (n <= 0) {
      SetError(error, "csr open: short index read");
      return false;
    }
    got += static_cast<uint64_t>(n);
  }
  if (index_crc != util::Crc32c(index.data(), index.size())) {
    SetError(error, "csr open: index checksum mismatch");
    return false;
  }

  const char* p = index.data();
  csr.offsets_.resize(static_cast<std::size_t>(num_vertices) + 1);
  std::memcpy(csr.offsets_.data(), p, csr.offsets_.size() * sizeof(uint64_t));
  p += csr.offsets_.size() * sizeof(uint64_t);
  csr.totals_.resize(static_cast<std::size_t>(num_vertices));
  std::memcpy(csr.totals_.data(), p, csr.totals_.size() * sizeof(double));
  p += csr.totals_.size() * sizeof(double);
  csr.block_first_.resize(static_cast<std::size_t>(csr.num_blocks_) +
                          (csr.num_blocks_ > 0 ? 1 : 0));
  std::memcpy(csr.block_first_.data(), p,
              csr.block_first_.size() * sizeof(VertexId));
  p += csr.block_first_.size() * sizeof(VertexId);
  csr.block_crc_.resize(static_cast<std::size_t>(csr.num_blocks_));
  std::memcpy(csr.block_crc_.data(), p,
              csr.block_crc_.size() * sizeof(uint32_t));

  if (csr.offsets_.front() != 0 || csr.offsets_.back() != csr.num_edges_ ||
      !std::is_sorted(csr.offsets_.begin(), csr.offsets_.end())) {
    SetError(error, "csr open: offset table is not a valid CSR");
    return false;
  }
  if (csr.num_blocks_ > 0) {
    bool table_ok = csr.block_first_.front() == 0 &&
                    csr.block_first_.back() == csr.num_vertices_;
    for (std::size_t b = 0; table_ok && b + 1 < csr.block_first_.size(); ++b) {
      table_ok = csr.block_first_[b] < csr.block_first_[b + 1];
    }
    if (!table_ok) {
      SetError(error, "csr open: block table is not a partition of the "
                      "vertex range");
      return false;
    }
  }
  *out = std::move(csr);
  return true;
}

bool CsrMmap::MapBlock(uint32_t b, bool verify_crc, CsrMapHandle* handle,
                       const Edge** edges, std::string* error) const {
  *handle = CsrMapHandle{};
  *edges = nullptr;
  if (b >= num_blocks_ || fd_ < 0) {
    SetError(error, "csr map: block out of range");
    return false;
  }
  const uint64_t payload = BlockPayloadBytes(b);
  if (payload == 0) {
    return true;  // empty block: nothing to map
  }
  const uint64_t file_off =
      edge_section_offset_ + BlockFirstEdge(b) * sizeof(Edge);
  static const uint64_t kPage =
      static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t aligned = file_off & ~(kPage - 1);
  const std::size_t slop = static_cast<std::size_t>(file_off - aligned);
  const std::size_t length = slop + static_cast<std::size_t>(payload);
  void* addr = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd_,  // bingo-lint: allow(bare-allocation) -- the mmap arena itself: block residency is the point of the out-of-core tier; pages are returned via Unmap on eviction
                      static_cast<off_t>(aligned));
  if (addr == MAP_FAILED) {
    SetError(error, "csr map: mmap failed");
    return false;
  }
  const Edge* first =
      reinterpret_cast<const Edge*>(static_cast<const char*>(addr) + slop);
  if (verify_crc &&
      util::Crc32c(first, static_cast<std::size_t>(payload)) !=
          block_crc_[b]) {
    ::munmap(addr, length);
    SetError(error, "csr map: block checksum mismatch");
    return false;
  }
  handle->addr = addr;
  handle->length = length;
  *edges = first;
  return true;
}

void CsrMmap::Unmap(const CsrMapHandle& handle) {
  if (handle.addr != nullptr) {
    ::munmap(handle.addr, handle.length);
  }
}

bool CsrMmap::ReadEdges(uint64_t first_edge, uint64_t count, Edge* out) const {
  if (fd_ < 0 || first_edge > num_edges_ || count > num_edges_ - first_edge) {
    return false;
  }
  uint64_t done = 0;
  const uint64_t base = edge_section_offset_ + first_edge * sizeof(Edge);
  const uint64_t total = count * sizeof(Edge);
  char* dst = reinterpret_cast<char*>(out);
  while (done < total) {
    const ssize_t n = ::pread(fd_, dst + done,
                              static_cast<std::size_t>(total - done),
                              static_cast<off_t>(base + done));
    if (n <= 0) {
      return false;
    }
    done += static_cast<uint64_t>(n);
  }
  return true;
}

}  // namespace bingo::graph
