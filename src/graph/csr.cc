#include "src/graph/csr.h"

#include <algorithm>

namespace bingo::graph {

Csr Csr::FromPairs(VertexId num_vertices, const EdgePairList& pairs, bool dedup) {
  Csr csr;
  csr.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const EdgePair& e : pairs) {
    ++csr.offsets_[e.src + 1];
  }
  for (std::size_t v = 1; v < csr.offsets_.size(); ++v) {
    csr.offsets_[v] += csr.offsets_[v - 1];
  }
  csr.dsts_.resize(pairs.size());
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const EdgePair& e : pairs) {
    csr.dsts_[cursor[e.src]++] = e.dst;
  }
  if (dedup) {
    std::vector<uint64_t> new_offsets(csr.offsets_.size(), 0);
    std::vector<VertexId> new_dsts;
    new_dsts.reserve(csr.dsts_.size());
    for (VertexId v = 0; v < num_vertices; ++v) {
      auto begin = csr.dsts_.begin() + static_cast<std::ptrdiff_t>(csr.offsets_[v]);
      auto end = csr.dsts_.begin() + static_cast<std::ptrdiff_t>(csr.offsets_[v + 1]);
      std::sort(begin, end);
      auto last = std::unique(begin, end);
      new_dsts.insert(new_dsts.end(), begin, last);
      new_offsets[v + 1] = new_dsts.size();
    }
    csr.offsets_ = std::move(new_offsets);
    csr.dsts_ = std::move(new_dsts);
  }
  return csr;
}

uint32_t Csr::MaxDegree() const {
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

}  // namespace bingo::graph
