// Edge-bias generation (§6.1 "Bias").
//
// The paper's default bias is derived from vertex degrees ("naturally follow
// power law distribution"); Fig 9 and Fig 15(c) additionally use Uniform,
// Gaussian, and Power-law synthetic distributions. Floating-point variants
// (Fig 14) add a U(0,1) fractional part to the integer bias.

#ifndef BINGO_SRC_GRAPH_BIAS_H_
#define BINGO_SRC_GRAPH_BIAS_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/util/rng.h"

namespace bingo::graph {

enum class BiasDistribution {
  kDegree,    // bias(u->v) = out-degree(v), clamped to >= 1
  kUniform,   // uniform integer in [1, max_bias]
  kGauss,     // round(N(max/2, max/6)) clamped to [1, max_bias]
  kPowerLaw,  // Zipf-like: floor(max^(U^alpha)) clamped to [1, max_bias]
};

struct BiasParams {
  BiasDistribution distribution = BiasDistribution::kDegree;
  uint64_t max_bias = 255;  // upper bound for synthetic distributions
  double power_alpha = 2.0;
  // Gaussian parameters as fractions of max_bias.
  double gauss_mean_fraction = 0.5;
  double gauss_sigma_fraction = 1.0 / 6.0;
  bool floating_point = false;  // add U(0,1) fractional part (Fig 14)
};

// Produces one bias per CSR edge (aligned with CSR edge order).
std::vector<double> GenerateBiases(const Csr& csr, const BiasParams& params,
                                   util::Rng& rng);

// Produces a bias for a single (src, dst) pair under `params`; used when
// update streams insert edges that were not part of the initial CSR.
// `dst_degree` supplies the degree signal for the kDegree distribution.
double GenerateOneBias(uint32_t dst_degree, const BiasParams& params,
                       util::Rng& rng);

// Converts CSR + biases to a weighted edge list (bulk-load input).
WeightedEdgeList ToWeightedEdges(const Csr& csr, const std::vector<double>& biases);

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_BIAS_H_
