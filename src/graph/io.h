// Edge-list persistence so generated datasets and update streams can be
// saved and replayed across runs.
//
// Binary files are written in a versioned, checksummed frame (see io.cc)
// and saved atomically: the bytes land in a temp file that is fsync'd and
// renamed over the target, so a crash mid-save never destroys the previous
// good file. Loads validate the on-disk edge count against the actual file
// size before allocating, and verify header + payload CRCs; the legacy
// unchecksummed format from earlier revisions is still readable (with the
// same size validation).

#ifndef BINGO_SRC_GRAPH_IO_H_
#define BINGO_SRC_GRAPH_IO_H_

#include <string>

#include "src/graph/types.h"

namespace bingo::graph {

// Text format: one "src dst bias" line per edge. Lines beginning with '#'
// or '%' are comments (SNAP / Konect conventions). The bias column is
// optional (default 1.0), but when present it must parse completely as a
// finite, non-negative number — "1 2 abc" is a corrupt record, not a
// bias-1 edge, and the load fails.
bool SaveWeightedEdgesText(const std::string& path, const WeightedEdgeList& edges);
bool LoadWeightedEdgesText(const std::string& path, WeightedEdgeList& edges);

// Binary format: little-endian checksummed header (magic, version, count,
// CRC) then packed records and a payload CRC.
bool SaveWeightedEdgesBinary(const std::string& path, const WeightedEdgeList& edges);
bool LoadWeightedEdgesBinary(const std::string& path, WeightedEdgeList& edges);

// Number of vertices implied by an edge list (max id + 1).
VertexId ImpliedVertexCount(const WeightedEdgeList& edges);

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_IO_H_
