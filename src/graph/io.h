// Edge-list persistence so generated datasets and update streams can be
// saved and replayed across runs.

#ifndef BINGO_SRC_GRAPH_IO_H_
#define BINGO_SRC_GRAPH_IO_H_

#include <string>

#include "src/graph/types.h"

namespace bingo::graph {

// Text format: one "src dst bias" line per edge. Lines beginning with '#'
// or '%' are comments (SNAP / Konect conventions).
bool SaveWeightedEdgesText(const std::string& path, const WeightedEdgeList& edges);
bool LoadWeightedEdgesText(const std::string& path, WeightedEdgeList& edges);

// Binary format: little-endian header (magic, count) then packed records.
bool SaveWeightedEdgesBinary(const std::string& path, const WeightedEdgeList& edges);
bool LoadWeightedEdgesBinary(const std::string& path, WeightedEdgeList& edges);

// Number of vertices implied by an edge list (max id + 1).
VertexId ImpliedVertexCount(const WeightedEdgeList& edges);

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_IO_H_
