#include "src/graph/update_stream.h"

#include <algorithm>
#include <cassert>

namespace bingo::graph {

namespace {

// Fisher-Yates with our Rng (std::shuffle requires a URBG; Rng qualifies,
// but an explicit loop keeps the draw count deterministic across stdlibs).
template <typename T>
void Shuffle(std::vector<T>& v, util::Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.NextBounded(i)]);
  }
}

}  // namespace

UpdateWorkload BuildUpdateWorkload(const WeightedEdgeList& all_edges,
                                   const UpdateWorkloadParams& params,
                                   util::Rng& rng) {
  const uint64_t total_updates =
      params.batch_size * static_cast<uint64_t>(params.num_batches);
  uint64_t num_inserts = 0;
  switch (params.kind) {
    case UpdateKind::kInsertion:
      num_inserts = total_updates;
      break;
    case UpdateKind::kDeletion:
      num_inserts = 0;
      break;
    case UpdateKind::kMixed:
      num_inserts = total_updates / 2;
      break;
  }
  assert(all_edges.size() > num_inserts &&
         "graph too small for the requested reserve set");

  WeightedEdgeList shuffled = all_edges;
  Shuffle(shuffled, rng);

  UpdateWorkload workload;
  // Reserve set B = tail of the shuffle; initial set A = the rest.
  WeightedEdgeList reserve(shuffled.end() - static_cast<std::ptrdiff_t>(num_inserts),
                           shuffled.end());
  shuffled.resize(shuffled.size() - num_inserts);
  workload.initial_edges = std::move(shuffled);

  // The deletion-eligible pool starts as A and grows with every insert.
  WeightedEdgeList live = workload.initial_edges;

  // Order of operations: insertion-only / deletion-only are trivial; mixed
  // interleaves an equal number of each, in random order.
  std::vector<uint8_t> is_insert(total_updates, 0);
  for (uint64_t i = 0; i < num_inserts; ++i) {
    is_insert[i] = 1;
  }
  if (params.kind == UpdateKind::kMixed) {
    Shuffle(is_insert, rng);
  }

  workload.updates.reserve(total_updates);
  uint64_t reserve_cursor = 0;
  for (uint64_t step = 0; step < total_updates; ++step) {
    if (is_insert[step] != 0 && reserve_cursor < reserve.size()) {
      const WeightedEdge& e = reserve[reserve_cursor++];
      workload.updates.push_back(
          Update{Update::Kind::kInsert, e.src, e.dst, e.bias, e.timestamp});
      live.push_back(e);
    } else {
      assert(!live.empty() && "deletion requested on an empty live set");
      const uint64_t pick = rng.NextBounded(live.size());
      const WeightedEdge e = live[pick];
      live[pick] = live.back();
      live.pop_back();
      workload.updates.push_back(
          Update{Update::Kind::kDelete, e.src, e.dst, e.bias});
    }
  }
  return workload;
}

std::vector<UpdateList> SplitIntoBatches(const UpdateList& updates,
                                         uint64_t batch_size) {
  std::vector<UpdateList> batches;
  for (std::size_t begin = 0; begin < updates.size(); begin += batch_size) {
    const std::size_t end = std::min(updates.size(), begin + batch_size);
    batches.emplace_back(updates.begin() + static_cast<std::ptrdiff_t>(begin),
                         updates.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

const char* ToString(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsertion:
      return "Insertion";
    case UpdateKind::kDeletion:
      return "Deletion";
    case UpdateKind::kMixed:
      return "Mixed";
  }
  return "?";
}

}  // namespace bingo::graph
