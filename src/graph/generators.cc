#include "src/graph/generators.h"

#include <algorithm>

namespace bingo::graph {

EdgePairList GenerateRmat(int scale, uint64_t num_edges, util::Rng& rng,
                          const RmatParams& params) {
  EdgePairList edges;
  edges.reserve(num_edges);
  const VertexId n = VertexId{1} << scale;
  for (uint64_t e = 0; e < num_edges; ++e) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int level = 0; level < scale; ++level) {
      // Perturb quadrant probabilities per level (standard R-MAT smoothing).
      const double jitter = 1.0 + params.noise * (rng.NextUnit() - 0.5);
      const double a = params.a * jitter;
      const double b = params.b * jitter;
      const double c = params.c * jitter;
      const double d = 1.0 - params.a - params.b - params.c;
      const double total = a + b + c + d;
      const double r = rng.NextUnit() * total;
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        dst |= 1;
      } else if (r < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.push_back(EdgePair{src % n, dst % n});
  }
  return edges;
}

EdgePairList GenerateUniform(VertexId num_vertices, uint64_t num_edges,
                             util::Rng& rng) {
  EdgePairList edges;
  edges.reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    edges.push_back(EdgePair{static_cast<VertexId>(rng.NextBounded(num_vertices)),
                             static_cast<VertexId>(rng.NextBounded(num_vertices))});
  }
  return edges;
}

EdgePairList GenerateRing(VertexId num_vertices, uint32_t k) {
  EdgePairList edges;
  edges.reserve(static_cast<uint64_t>(num_vertices) * k);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (uint32_t i = 1; i <= k; ++i) {
      edges.push_back(EdgePair{v, static_cast<VertexId>((v + i) % num_vertices)});
    }
  }
  return edges;
}

void MakeUndirected(EdgePairList& edges) {
  const std::size_t original = edges.size();
  edges.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    edges.push_back(EdgePair{edges[i].dst, edges[i].src});
  }
}

void Canonicalize(EdgePairList& edges) {
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const EdgePair& e) { return e.src == e.dst; }),
              edges.end());
  std::sort(edges.begin(), edges.end(), [](const EdgePair& x, const EdgePair& y) {
    return x.src != y.src ? x.src < y.src : x.dst < y.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const EdgePair& x, const EdgePair& y) {
                            return x.src == y.src && x.dst == y.dst;
                          }),
              edges.end());
}

}  // namespace bingo::graph
