#include "src/graph/bias.h"

#include <algorithm>
#include <cmath>

namespace bingo::graph {

namespace {

uint64_t Clamp(uint64_t value, uint64_t max_bias) {
  return std::clamp<uint64_t>(value, 1, max_bias);
}

uint64_t SampleInteger(uint32_t dst_degree, const BiasParams& params,
                       util::Rng& rng) {
  switch (params.distribution) {
    case BiasDistribution::kDegree:
      return std::max<uint64_t>(1, dst_degree);
    case BiasDistribution::kUniform:
      return 1 + rng.NextBounded(params.max_bias);
    case BiasDistribution::kGauss: {
      // Box-Muller; mean max/2, sigma max/6 keeps ~99.7% of the mass in range.
      const double u1 = std::max(rng.NextUnit(), 1e-12);
      const double u2 = rng.NextUnit();
      const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      const double mean =
          static_cast<double>(params.max_bias) * params.gauss_mean_fraction;
      const double sigma =
          static_cast<double>(params.max_bias) * params.gauss_sigma_fraction;
      const double value = std::round(mean + sigma * z);
      if (value < 1.0) {
        return 1;
      }
      return Clamp(static_cast<uint64_t>(value), params.max_bias);
    }
    case BiasDistribution::kPowerLaw: {
      // Inverse-CDF style heavy tail: bias = max^(u^alpha); alpha > 1 skews
      // the mass toward small biases, as in real-world weights.
      const double u = rng.NextUnit();
      const double exponent = std::pow(u, params.power_alpha);
      const double value =
          std::floor(std::pow(static_cast<double>(params.max_bias), exponent));
      return Clamp(static_cast<uint64_t>(value), params.max_bias);
    }
  }
  return 1;
}

}  // namespace

double GenerateOneBias(uint32_t dst_degree, const BiasParams& params,
                       util::Rng& rng) {
  const uint64_t integer = SampleInteger(dst_degree, params, rng);
  double bias = static_cast<double>(integer);
  if (params.floating_point) {
    bias += rng.NextUnit();
  }
  return bias;
}

std::vector<double> GenerateBiases(const Csr& csr, const BiasParams& params,
                                   util::Rng& rng) {
  std::vector<double> biases(csr.NumEdges());
  uint64_t edge_index = 0;
  for (VertexId v = 0; v < csr.NumVertices(); ++v) {
    for (VertexId dst : csr.Neighbors(v)) {
      biases[edge_index++] = GenerateOneBias(csr.Degree(dst), params, rng);
    }
  }
  return biases;
}

WeightedEdgeList ToWeightedEdges(const Csr& csr, const std::vector<double>& biases) {
  WeightedEdgeList edges;
  edges.reserve(csr.NumEdges());
  uint64_t edge_index = 0;
  for (VertexId v = 0; v < csr.NumVertices(); ++v) {
    for (VertexId dst : csr.Neighbors(v)) {
      edges.push_back(WeightedEdge{v, dst, biases[edge_index++]});
    }
  }
  return edges;
}

}  // namespace bingo::graph
