// Dynamic-update workload generation, following §6.1 of the paper exactly:
//
//   (i)  split the original edges into A (original minus 10·BATCHSIZE edges)
//        and B (10·BATCHSIZE reserve edges), randomly;
//   (ii) repeatedly decide insert vs delete;
//   (iii) a delete removes a random edge currently in A; an insert moves a
//        random edge from B into A.
//
// This is repeated 10·BATCHSIZE times; set A at step (i) initializes the
// test graph. Three workload kinds exist: Insertion-only, Deletion-only,
// and Mixed (equal numbers of each).

#ifndef BINGO_SRC_GRAPH_UPDATE_STREAM_H_
#define BINGO_SRC_GRAPH_UPDATE_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/graph/bias.h"
#include "src/graph/types.h"
#include "src/util/rng.h"

namespace bingo::graph {

enum class UpdateKind { kInsertion, kDeletion, kMixed };

struct UpdateWorkload {
  WeightedEdgeList initial_edges;  // set A after the split
  UpdateList updates;              // 10·BATCHSIZE updates, in order
};

struct UpdateWorkloadParams {
  UpdateKind kind = UpdateKind::kMixed;
  uint64_t batch_size = 100'000;
  int num_batches = 10;
};

// Builds the workload from weighted edges. Deletions always target an edge
// that is live at that point of the stream; insertions re-add edges from the
// reserve set with a bias drawn like the original one.
UpdateWorkload BuildUpdateWorkload(const WeightedEdgeList& all_edges,
                                   const UpdateWorkloadParams& params,
                                   util::Rng& rng);

// Slices `updates` into contiguous batches of `batch_size` (last one may be
// short).
std::vector<UpdateList> SplitIntoBatches(const UpdateList& updates,
                                         uint64_t batch_size);

const char* ToString(UpdateKind kind);

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_UPDATE_STREAM_H_
