#include "src/graph/io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "src/util/checksum.h"
#include "src/util/fileio.h"
#include "src/util/serial.h"

namespace bingo::graph {

namespace {

using util::AppendPod;
using util::ReadPod;

// Legacy format (unchecksummed): magic, count, raw records. Still readable.
constexpr uint64_t kMagicV1 = 0x42494e474f454447ULL;  // "BINGOEDG"
// v2: magic, version, count, header CRC, 16-byte records, payload CRC.
constexpr uint64_t kMagicV2 = 0x42494e474f454432ULL;  // "BINGOED2"
// Current format: same framing, 20-byte records carrying the timestamp.
constexpr uint64_t kMagicV3 = 0x42494e474f454433ULL;  // "BINGOED3"
constexpr uint32_t kFormatVersion = 3;
constexpr std::size_t kHeaderBytesV1 = 8 + 8;
constexpr std::size_t kHeaderBytesV23 = 8 + 4 + 4 + 8 + 4;

// v1/v2 record: {src u32, dst u32, bias f64}, the pre-timestamp
// WeightedEdge layout. Kept as a local packed mirror — the in-memory struct
// has grown (and padded) past it, so records are serialized field-wise
// rather than dumped raw.
struct PackedRecordV12 {
  VertexId src;
  VertexId dst;
  double bias;
};
static_assert(sizeof(PackedRecordV12) == 16,
              "v1/v2 record layout must stay 16 bytes");
// v3 record: {src u32, dst u32, timestamp u32, bias f64}, packed to 20
// bytes (the in-memory struct carries 4 bytes of padding).
constexpr std::size_t kRecordBytesV3 = 4 + 4 + 4 + 8;

// A bias that can never have been produced by a valid save: corrupt record.
bool ValidBias(double bias) { return std::isfinite(bias) && bias >= 0.0; }

}  // namespace

bool SaveWeightedEdgesText(const std::string& path, const WeightedEdgeList& edges) {
  util::AtomicFileWriter writer(path);
  if (!writer.ok()) {
    return false;
  }
  std::string chunk = "# bingo weighted edge list: src dst bias\n";
  for (const WeightedEdge& e : edges) {
    std::ostringstream line;
    line << e.src << ' ' << e.dst << ' ' << e.bias << '\n';
    chunk += line.str();
    if (chunk.size() >= (1u << 20)) {
      if (!writer.Write(chunk.data(), chunk.size())) {
        return false;
      }
      chunk.clear();
    }
  }
  if (!chunk.empty() && !writer.Write(chunk.data(), chunk.size())) {
    return false;
  }
  return writer.Commit();
}

bool LoadWeightedEdgesText(const std::string& path, WeightedEdgeList& edges) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  edges.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      continue;
    }
    std::istringstream ss(line);
    WeightedEdge e{0, 0, 1.0};
    if (!(ss >> e.src >> e.dst)) {
      return false;
    }
    ss >> std::ws;
    if (!ss.eof()) {
      // Third column present: it must parse fully as a valid bias.
      if (!(ss >> e.bias) || !ValidBias(e.bias)) {
        return false;
      }
      ss >> std::ws;
      if (!ss.eof()) {
        return false;  // trailing garbage after the bias
      }
    }
    edges.push_back(e);
  }
  return true;
}

bool SaveWeightedEdgesBinary(const std::string& path, const WeightedEdgeList& edges) {
  util::AtomicFileWriter writer(path);
  if (!writer.ok()) {
    return false;
  }
  std::string header;
  AppendPod(header, kMagicV3);
  AppendPod(header, kFormatVersion);
  AppendPod(header, uint32_t{0});  // reserved
  AppendPod(header, static_cast<uint64_t>(edges.size()));
  AppendPod(header, util::Crc32c(header.data(), header.size()));
  if (!writer.Write(header.data(), header.size())) {
    return false;
  }
  // Serialize field-wise in 1 MiB chunks, accumulating the payload CRC over
  // the packed byte stream (the in-memory struct's padding never reaches
  // disk).
  uint32_t payload_crc = 0;
  std::string chunk;
  for (const WeightedEdge& e : edges) {
    AppendPod(chunk, e.src);
    AppendPod(chunk, e.dst);
    AppendPod(chunk, e.timestamp);
    AppendPod(chunk, e.bias);
    if (chunk.size() >= (1u << 20)) {
      payload_crc = util::Crc32c(chunk.data(), chunk.size(), payload_crc);
      if (!writer.Write(chunk.data(), chunk.size())) {
        return false;
      }
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    payload_crc = util::Crc32c(chunk.data(), chunk.size(), payload_crc);
    if (!writer.Write(chunk.data(), chunk.size())) {
      return false;
    }
  }
  if (!writer.Write(&payload_crc, sizeof(payload_crc))) {
    return false;
  }
  return writer.Commit();
}

bool LoadWeightedEdgesBinary(const std::string& path, WeightedEdgeList& edges) {
  // The packed record is narrower than the in-memory struct, so the payload
  // is read once into a byte buffer and decoded field-wise (the CRC covers
  // the packed bytes, never padding).
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  std::string header(
      static_cast<std::size_t>(std::min<uint64_t>(file_size, kHeaderBytesV23)),
      '\0');
  in.read(header.data(), static_cast<std::streamsize>(header.size()));
  if (!in) {
    return false;
  }
  std::size_t offset = 0;
  uint64_t magic = 0;
  if (!ReadPod(header, offset, magic)) {
    return false;
  }

  uint64_t count = 0;
  std::size_t payload_offset = 0;
  std::size_t record_bytes = sizeof(PackedRecordV12);
  if (magic == kMagicV2 || magic == kMagicV3) {
    uint32_t version = 0;
    uint32_t reserved = 0;
    uint32_t header_crc = 0;
    if (!ReadPod(header, offset, version) || !ReadPod(header, offset, reserved) ||
        !ReadPod(header, offset, count)) {
      return false;
    }
    const uint32_t expected_version = magic == kMagicV3 ? 3 : 2;
    const std::size_t crc_span = offset;
    if (!ReadPod(header, offset, header_crc) || version != expected_version ||
        header_crc != util::Crc32c(header.data(), crc_span)) {
      return false;
    }
    payload_offset = kHeaderBytesV23;
    if (magic == kMagicV3) {
      record_bytes = kRecordBytesV3;
    }
  } else if (magic == kMagicV1) {
    if (!ReadPod(header, offset, count)) {
      return false;
    }
    payload_offset = kHeaderBytesV1;
  } else {
    return false;
  }

  // The on-disk count is untrusted: validate it against the bytes actually
  // present before allocating, so a truncated or corrupt file cannot
  // trigger a multi-GB resize.
  const uint64_t remaining = file_size - payload_offset;
  if (count > remaining / record_bytes) {
    return false;
  }
  const std::size_t payload_bytes =
      static_cast<std::size_t>(count) * record_bytes;
  std::string payload(payload_bytes, '\0');
  in.seekg(static_cast<std::streamoff>(payload_offset));
  in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (!in) {
    return false;
  }
  if (magic != kMagicV1) {
    uint32_t payload_crc = 0;
    in.read(reinterpret_cast<char*>(&payload_crc), sizeof(payload_crc));
    if (!in ||
        payload_crc != util::Crc32c(payload.data(), payload.size())) {
      return false;
    }
  }
  edges.clear();
  edges.reserve(count);
  std::size_t pos = 0;
  for (uint64_t i = 0; i < count; ++i) {
    WeightedEdge e{};
    ReadPod(payload, pos, e.src);
    ReadPod(payload, pos, e.dst);
    if (magic == kMagicV3) {
      ReadPod(payload, pos, e.timestamp);
    }
    ReadPod(payload, pos, e.bias);
    if (!ValidBias(e.bias)) {
      edges.clear();
      return false;
    }
    edges.push_back(e);
  }
  return true;
}

VertexId ImpliedVertexCount(const WeightedEdgeList& edges) {
  VertexId max_id = 0;
  for (const WeightedEdge& e : edges) {
    max_id = std::max({max_id, e.src, e.dst});
  }
  return edges.empty() ? 0 : max_id + 1;
}

}  // namespace bingo::graph
