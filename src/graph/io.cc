#include "src/graph/io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bingo::graph {

namespace {
constexpr uint64_t kMagic = 0x42494e474f454447ULL;  // "BINGOEDG"
}

bool SaveWeightedEdgesText(const std::string& path, const WeightedEdgeList& edges) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# bingo weighted edge list: src dst bias\n";
  for (const WeightedEdge& e : edges) {
    out << e.src << ' ' << e.dst << ' ' << e.bias << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadWeightedEdgesText(const std::string& path, WeightedEdgeList& edges) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  edges.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      continue;
    }
    std::istringstream ss(line);
    WeightedEdge e{0, 0, 1.0};
    if (!(ss >> e.src >> e.dst)) {
      return false;
    }
    ss >> e.bias;  // optional third column
    edges.push_back(e);
  }
  return true;
}

bool SaveWeightedEdgesBinary(const std::string& path, const WeightedEdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  const uint64_t count = edges.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(count * sizeof(WeightedEdge)));
  return static_cast<bool>(out);
}

bool LoadWeightedEdgesBinary(const std::string& path, WeightedEdgeList& edges) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint64_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return false;
  }
  edges.resize(count);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(count * sizeof(WeightedEdge)));
  return static_cast<bool>(in);
}

VertexId ImpliedVertexCount(const WeightedEdgeList& edges) {
  VertexId max_id = 0;
  for (const WeightedEdge& e : edges) {
    max_id = std::max({max_id, e.src, e.dst});
  }
  return edges.empty() ? 0 : max_id + 1;
}

}  // namespace bingo::graph
