// On-disk immutable CSR container (format v1) and its mmap-backed reader:
// the static tier of the out-of-core walk path.
//
// A CSR file holds a graph's base edges in the canonical vertex-major order
// (the same order snapshots persist), pre-composed biases included, split
// into fixed-target-size *blocks* of consecutive vertices. The block is the
// unit of residency: the block cache (core/block_cache.h) maps and evicts
// whole blocks, and the out-of-core driver (walk/ooc.h) schedules walkers
// block by block. The index — per-vertex edge offsets, per-vertex bias
// totals, the block table, and per-block CRCs — is small (O(V + blocks))
// and loads into RAM at Open; only edge payload bytes stay on disk.
//
// Layout (little-endian, native field encoding like every other container
// in this repo):
//
//   header   64 bytes: magic u64, version u32, reserved u32, num_vertices
//            u64, num_edges u64, block_bytes_target u64, num_blocks u64,
//            index_bytes u64, index_crc u32, header_crc u32 (CRC of the
//            preceding 60 bytes)
//   index    edge_offsets u64 x (V+1); bias_totals f64 x V;
//            block_first_vertex u32 x (num_blocks+1); block_crc u32 x
//            num_blocks; zero padding to a 16-byte multiple (so every
//            16-byte edge record sits 8-aligned in the file and in maps)
//   edges    raw graph::Edge records (16 bytes each, static_asserted), one
//            run per vertex, vertex-major
//
// Edge records are NOT page-aligned per block; MapBlock aligns the file
// offset down to a page internally. Open validates the header CRC, the
// index CRC, the block table's shape, and that the file size equals
// 64 + index_bytes + 16*num_edges exactly — a truncated or corrupt file
// fails with a clean error before any byte of it is mapped, never with a
// SIGBUS at walk time. Per-block CRCs are checked lazily on first map (the
// cache's verify_crc knob).
//
// Writing is single-pass and atomic: CsrFileWriter streams appended edges
// to a side temp file while accumulating degrees and bias totals, then
// Finish() computes the block table, re-reads the side file once for block
// CRCs, and assembles header+index+edges through AtomicFileWriter (temp +
// fsync + rename), so a crash mid-build never leaves a half-written
// container under the final name.

#ifndef BINGO_SRC_GRAPH_CSR_MMAP_H_
#define BINGO_SRC_GRAPH_CSR_MMAP_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/graph/types.h"

namespace bingo::graph {

// Default block payload target: 4 MiB of edge records (~256k edges).
inline constexpr uint64_t kDefaultCsrBlockBytes = 4ull << 20;

// Streams a CSR container to `path`. Edges must arrive vertex-major
// (non-decreasing src); biases are stored as given (pre-composed — the
// out-of-core tier runs with the identity bias pipeline).
class CsrFileWriter {
 public:
  CsrFileWriter(std::string path, VertexId num_vertices,
                uint64_t block_bytes_target = kDefaultCsrBlockBytes);
  ~CsrFileWriter();

  CsrFileWriter(const CsrFileWriter&) = delete;
  CsrFileWriter& operator=(const CsrFileWriter&) = delete;

  bool ok() const { return ok_; }

  // Appends one out-edge of `src`. Fails (and latches !ok()) if src is out
  // of range or decreases.
  bool Append(VertexId src, const Edge& edge);

  // Assembles the final container atomically and removes the side file.
  // After Finish (success or not) the writer is spent.
  bool Finish(std::string* error = nullptr);

 private:
  void Fail(std::string* error, const std::string& message);

  std::string path_;
  std::string side_path_;
  std::FILE* side_ = nullptr;
  bool ok_ = false;
  bool finished_ = false;
  VertexId num_vertices_ = 0;
  VertexId last_src_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t block_bytes_target_ = kDefaultCsrBlockBytes;
  std::vector<uint64_t> degrees_;
  std::vector<double> totals_;
};

// Convenience: stable-sorts a copy of `edges` into vertex-major order
// (preserving per-vertex input order, i.e. timestamp order when the input
// is canonical) and writes the container.
bool WriteCsrFile(const std::string& path, VertexId num_vertices,
                  const WeightedEdgeList& edges,
                  uint64_t block_bytes_target = kDefaultCsrBlockBytes,
                  std::string* error = nullptr);

// One mapped block; pass back to CsrMmap::Unmap. Value-semantic POD so the
// cache can store it by value.
struct CsrMapHandle {
  void* addr = nullptr;       // page-aligned mapping start
  std::size_t length = 0;     // mapped length (payload + alignment slop)
};

// Read-only view of a CSR container. Open() fully validates the file shape
// before returning; after that, MapBlock/ReadEdges never touch bytes
// outside the validated edge section. Thread safety: all accessors and
// ReadEdges (pread) are safe concurrently; MapBlock/Unmap are safe
// concurrently with each other and with reads of *other* mappings.
class CsrMmap {
 public:
  CsrMmap() = default;
  ~CsrMmap();

  CsrMmap(const CsrMmap&) = delete;
  CsrMmap& operator=(const CsrMmap&) = delete;
  CsrMmap(CsrMmap&& other) noexcept;
  CsrMmap& operator=(CsrMmap&& other) noexcept;

  static bool Open(const std::string& path, CsrMmap* out, std::string* error);

  VertexId NumVertices() const { return num_vertices_; }
  uint64_t NumEdges() const { return num_edges_; }
  uint32_t NumBlocks() const { return static_cast<uint32_t>(num_blocks_); }
  uint64_t BlockBytesTarget() const { return block_bytes_target_; }
  const std::string& Path() const { return path_; }

  // RAM footprint of the in-memory index (offsets + totals + block table).
  uint64_t IndexBytes() const;

  uint64_t EdgeOffset(VertexId v) const { return offsets_[v]; }
  uint64_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }
  // Sum of the composed biases of v's out-edges, accumulated in canonical
  // edge order at write time — bit-identical to a runtime forward sum, so
  // ITS draws against it are exact.
  double TotalBias(VertexId v) const { return totals_[v]; }

  uint32_t BlockOfVertex(VertexId v) const;
  VertexId BlockFirstVertex(uint32_t b) const { return block_first_[b]; }
  uint64_t BlockFirstEdge(uint32_t b) const {
    return offsets_[block_first_[b]];
  }
  uint64_t BlockEdgeCount(uint32_t b) const {
    return offsets_[block_first_[b + 1]] - offsets_[block_first_[b]];
  }
  std::size_t BlockPayloadBytes(uint32_t b) const {
    return static_cast<std::size_t>(BlockEdgeCount(b)) * sizeof(Edge);
  }

  // Maps block b read-only. On success *edges points at the block's first
  // edge record (nullptr for an empty block) and *handle must be returned
  // to Unmap. verify_crc additionally checks the block's stored CRC.
  bool MapBlock(uint32_t b, bool verify_crc, CsrMapHandle* handle,
                const Edge** edges, std::string* error) const;
  static void Unmap(const CsrMapHandle& handle);

  // Transient copy of edge records [first_edge, first_edge + count) via
  // pread: no mapping, safe from any thread at any time.
  bool ReadEdges(uint64_t first_edge, uint64_t count, Edge* out) const;

 private:
  void Close();

  std::string path_;
  int fd_ = -1;
  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t num_blocks_ = 0;
  uint64_t block_bytes_target_ = 0;
  uint64_t edge_section_offset_ = 0;
  std::vector<uint64_t> offsets_;      // V+1
  std::vector<double> totals_;         // V
  std::vector<VertexId> block_first_;  // num_blocks+1
  std::vector<uint32_t> block_crc_;    // num_blocks
};

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_CSR_MMAP_H_
