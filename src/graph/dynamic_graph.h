// Hornet-style dynamic graph storage (substitution S5 in DESIGN.md).
//
// Each vertex owns a dynamic adjacency array carved out of a size-class
// MemoryPool, doubling capacity on growth. Deletion is swap-with-tail so
// adjacency arrays stay compact, which is what gives the per-vertex Bingo
// sampler O(1) unbiased intra-group sampling over neighbor *indices*.
//
// The "neighbor index" of an edge is its position in the adjacency array of
// its source vertex. Swap-with-tail renames one index per deletion; callers
// that mirror neighbor indices (the Bingo groups) receive the rename via
// SwapRemoveResult and patch their structures in O(popcount(bias)).
//
// High-degree vertices additionally keep an open-addressing (dst -> index)
// finder so that delete-by-endpoint and node2vec's distance(w, v) adjacency
// probes run in O(1) expected time; low-degree vertices fall back to a
// linear scan over the (short) adjacency array.

#ifndef BINGO_SRC_GRAPH_DYNAMIC_GRAPH_H_
#define BINGO_SRC_GRAPH_DYNAMIC_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/graph/types.h"
#include "src/util/memory_pool.h"
#include "src/util/prefetch.h"

namespace bingo::graph {

class Csr;

class DynamicGraph {
 public:
  // Result of a swap-with-tail removal. If `moved` is true, the edge that
  // previously lived at neighbor index `moved_from` (the old tail) now lives
  // at the index that was removed.
  struct SwapRemoveResult {
    Edge removed;
    bool moved = false;
    uint32_t moved_from = 0;
    uint32_t moved_to = 0;
    Edge moved_edge;  // post-move copy, for group re-pointing
  };

  explicit DynamicGraph(VertexId num_vertices);
  ~DynamicGraph();

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;
  DynamicGraph(DynamicGraph&&) noexcept;
  DynamicGraph& operator=(DynamicGraph&&) noexcept;

  // Bulk-loads from a weighted edge list (biases preserved).
  static DynamicGraph FromEdges(VertexId num_vertices, const WeightedEdgeList& edges);

  // Bulk-loads from CSR with per-edge biases (parallel arrays).
  static DynamicGraph FromCsr(const Csr& csr, std::span<const double> biases);

  VertexId NumVertices() const { return static_cast<VertexId>(slots_.size()); }
  uint64_t NumEdges() const { return num_edges_.load(std::memory_order_relaxed); }

  uint32_t Degree(VertexId v) const { return slots_[v].size; }

  std::span<const Edge> Neighbors(VertexId v) const {
    const Slot& s = slots_[v];
    return {s.edges, s.size};
  }

  const Edge& NeighborAt(VertexId v, uint32_t index) const {
    return slots_[v].edges[index];
  }

  // Hints the hardware prefetcher at v's slot header and the head of its
  // adjacency block. Used by the fused walk passes to hide the pointer
  // chase of the *next* step while the current one computes (§ batched
  // serving). Safe for any v < NumVertices(); purely advisory.
  void PrefetchVertex(VertexId v) const {
    const Slot& s = slots_[v];
    util::PrefetchRead(&s);
    if (s.edges != nullptr) {
      util::PrefetchReadRange(s.edges, s.size * sizeof(Edge));
    }
  }

  // Appends edge (src -> dst, bias); returns its neighbor index. O(1)
  // amortized; growth allocates the next power-of-two block from the pool.
  // Stamps the edge with the internal insertion counter.
  uint32_t Insert(VertexId src, VertexId dst, double bias);

  // Same, with an explicit timestamp (logical epoch from an Update). Equal
  // timestamps are legal; FindEarliest/CollectMatches break ties by the
  // current neighbor index, which is a deterministic function of the update
  // sequence.
  uint32_t Insert(VertexId src, VertexId dst, double bias, uint32_t timestamp);

  // Removes the edge at `index` by swapping the tail into its place.
  // O(1) plus the finder patch. Index must be < Degree(src).
  SwapRemoveResult SwapRemove(VertexId src, uint32_t index);

  // Index of the earliest-inserted surviving copy of (src -> dst), if any.
  // O(1) expected with the finder, O(d) for low-degree vertices.
  std::optional<uint32_t> FindEarliest(VertexId src, VertexId dst) const;

  // All neighbor indices of src currently pointing at dst, sorted by
  // insertion timestamp (earliest first). Batched deletion resolves
  // duplicate-edge requests against this list (§5.2).
  std::vector<uint32_t> CollectMatches(VertexId src, VertexId dst) const;

  // One adjacency move produced by a batched removal: the edge moved from
  // neighbor index `from` to `to`.
  struct MoveRecord {
    uint32_t from;
    uint32_t to;
    Edge edge;
  };

  // Removes all edges at `sorted_idxs` (ascending, unique) using the
  // two-phase delete-and-swap of Fig 10(b): tail-window survivors fill the
  // front holes, so no filler is itself deleted. Returns the moves so
  // callers can re-point mirrored structures.
  std::vector<MoveRecord> BatchSwapRemove(VertexId src,
                                          std::span<const uint32_t> sorted_idxs);

  // True if an edge (src -> dst) currently exists. Used by node2vec's
  // distance test.
  bool HasEdge(VertexId src, VertexId dst) const;

  // Grows the vertex set (new vertices start with empty adjacency).
  void AddVertices(VertexId count);

  // Overwrites the bias of the edge at `index` (bias update event).
  void SetBias(VertexId src, uint32_t index, double bias) {
    slots_[src].edges[index].bias = bias;
  }

  // Bytes reserved by adjacency blocks and finders (analytic accounting).
  std::size_t MemoryBytes() const;

  util::MemoryPool& Pool() { return *pool_; }

 private:
  // Open-addressing multi-map from dst to neighbor index. Created once a
  // vertex's degree reaches kFinderThreshold.
  struct Finder {
    struct Entry {
      VertexId dst = kInvalidVertex;
      uint32_t index = kEmpty;
    };
    static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
    static constexpr uint32_t kTombstone = 0xFFFFFFFEu;

    std::vector<Entry> table;
    uint32_t live = 0;
    uint32_t used = 0;  // live + tombstones

    void Insert(VertexId dst, uint32_t index);
    bool Erase(VertexId dst, uint32_t index);
    bool Reindex(VertexId dst, uint32_t old_index, uint32_t new_index);
    void Grow(std::size_t min_capacity);
    std::size_t Mask() const { return table.size() - 1; }
  };

  struct Slot {
    Edge* edges = nullptr;
    uint32_t size = 0;
    uint32_t capacity = 0;
    std::unique_ptr<Finder> finder;
  };

  static constexpr uint32_t kFinderThreshold = 32;

  void Grow(Slot& slot);
  void EnsureFinder(VertexId v);

  std::unique_ptr<util::MemoryPool> pool_;
  std::vector<Slot> slots_;
  // Atomic so that batched updates may mutate disjoint vertices in
  // parallel; per-vertex state itself is never shared across workers.
  std::atomic<uint64_t> num_edges_{0};
  std::atomic<uint32_t> next_timestamp_{0};
};

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_DYNAMIC_GRAPH_H_
