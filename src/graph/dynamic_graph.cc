#include "src/graph/dynamic_graph.h"

#include <algorithm>
#include <cstring>

#include "src/graph/csr.h"
#include "src/util/bitops.h"

namespace bingo::graph {

namespace {
// Multiplicative hash for finder probing.
inline std::size_t HashDst(VertexId dst) {
  uint64_t x = dst;
  x *= 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(x >> 32);
}
}  // namespace

// ---------------------------------------------------------------- Finder --

void DynamicGraph::Finder::Grow(std::size_t min_capacity) {
  std::size_t cap = 16;
  while (cap < min_capacity * 2) {
    cap <<= 1;
  }
  std::vector<Entry> old = std::move(table);
  table.assign(cap, Entry{});
  used = live;
  uint32_t relive = 0;
  for (const Entry& e : old) {
    if (e.index != kEmpty && e.index != kTombstone) {
      std::size_t pos = HashDst(e.dst) & Mask();
      while (table[pos].index != kEmpty) {
        pos = (pos + 1) & Mask();
      }
      table[pos] = e;
      ++relive;
    }
  }
  live = relive;
  used = live;
}

void DynamicGraph::Finder::Insert(VertexId dst, uint32_t index) {
  if (table.empty() || (used + 1) * 4 >= table.size() * 3) {
    Grow(std::max<std::size_t>(live + 1, 8));
  }
  std::size_t pos = HashDst(dst) & Mask();
  while (table[pos].index != kEmpty && table[pos].index != kTombstone) {
    pos = (pos + 1) & Mask();
  }
  if (table[pos].index == kEmpty) {
    ++used;
  }
  table[pos] = Entry{dst, index};
  ++live;
}

bool DynamicGraph::Finder::Erase(VertexId dst, uint32_t index) {
  if (table.empty()) {
    return false;
  }
  std::size_t pos = HashDst(dst) & Mask();
  while (table[pos].index != kEmpty) {
    if (table[pos].dst == dst && table[pos].index == index) {
      table[pos].index = kTombstone;
      --live;
      return true;
    }
    pos = (pos + 1) & Mask();
  }
  return false;
}

bool DynamicGraph::Finder::Reindex(VertexId dst, uint32_t old_index,
                                   uint32_t new_index) {
  if (table.empty()) {
    return false;
  }
  std::size_t pos = HashDst(dst) & Mask();
  while (table[pos].index != kEmpty) {
    if (table[pos].dst == dst && table[pos].index == old_index) {
      table[pos].index = new_index;
      return true;
    }
    pos = (pos + 1) & Mask();
  }
  return false;
}

// ---------------------------------------------------------- DynamicGraph --

DynamicGraph::DynamicGraph(VertexId num_vertices)
    : pool_(std::make_unique<util::MemoryPool>()), slots_(num_vertices) {}

DynamicGraph::~DynamicGraph() {
  if (pool_ == nullptr) {
    return;  // moved-from
  }
  for (Slot& s : slots_) {
    if (s.edges != nullptr) {
      pool_->Deallocate(s.edges, static_cast<std::size_t>(s.capacity) * sizeof(Edge));
    }
  }
}

DynamicGraph::DynamicGraph(DynamicGraph&& other) noexcept
    : pool_(std::move(other.pool_)),
      slots_(std::move(other.slots_)),
      num_edges_(other.num_edges_.load(std::memory_order_relaxed)),
      next_timestamp_(other.next_timestamp_.load(std::memory_order_relaxed)) {}

DynamicGraph& DynamicGraph::operator=(DynamicGraph&& other) noexcept {
  if (this != &other) {
    this->~DynamicGraph();
    new (this) DynamicGraph(std::move(other));
  }
  return *this;
}

DynamicGraph DynamicGraph::FromEdges(VertexId num_vertices,
                                     const WeightedEdgeList& edges) {
  DynamicGraph g(num_vertices);
  // Two-pass bulk load: size each adjacency block exactly once, then fill.
  std::vector<uint32_t> degree(num_vertices, 0);
  for (const WeightedEdge& e : edges) {
    ++degree[e.src];
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (degree[v] == 0) {
      continue;
    }
    Slot& s = g.slots_[v];
    s.capacity = static_cast<uint32_t>(util::CeilPow2(degree[v]));
    s.edges = static_cast<Edge*>(
        g.pool_->Allocate(static_cast<std::size_t>(s.capacity) * sizeof(Edge)));
  }
  // Bulk loads carry the caller's timestamps (logical epochs; loaders
  // default them to 0). The insertion counter resumes past the maximum so
  // counter-stamped edges always sort after the bulk load.
  uint32_t max_ts = 0;
  for (const WeightedEdge& e : edges) {
    Slot& s = g.slots_[e.src];
    s.edges[s.size++] = Edge{e.dst, e.timestamp, e.bias};
    max_ts = std::max(max_ts, e.timestamp);
  }
  g.next_timestamp_.store(edges.empty() ? 0 : max_ts + 1,
                          std::memory_order_relaxed);
  g.num_edges_.store(edges.size(), std::memory_order_relaxed);
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (g.slots_[v].size >= kFinderThreshold) {
      g.EnsureFinder(v);
    }
  }
  return g;
}

DynamicGraph DynamicGraph::FromCsr(const Csr& csr, std::span<const double> biases) {
  WeightedEdgeList edges;
  edges.reserve(csr.NumEdges());
  for (VertexId v = 0; v < csr.NumVertices(); ++v) {
    const auto [begin, end] = csr.Range(v);
    for (uint64_t i = begin; i < end; ++i) {
      edges.push_back(WeightedEdge{v, csr.Dst(i), biases.empty() ? 1.0 : biases[i]});
    }
  }
  return FromEdges(csr.NumVertices(), edges);
}

void DynamicGraph::Grow(Slot& slot) {
  const uint32_t new_capacity = slot.capacity == 0 ? 4 : slot.capacity * 2;
  Edge* new_block = static_cast<Edge*>(
      pool_->Allocate(static_cast<std::size_t>(new_capacity) * sizeof(Edge)));
  if (slot.edges != nullptr) {
    std::memcpy(new_block, slot.edges, static_cast<std::size_t>(slot.size) * sizeof(Edge));
    pool_->Deallocate(slot.edges,
                      static_cast<std::size_t>(slot.capacity) * sizeof(Edge));
  }
  slot.edges = new_block;
  slot.capacity = new_capacity;
}

void DynamicGraph::EnsureFinder(VertexId v) {
  Slot& s = slots_[v];
  if (s.finder != nullptr) {
    return;
  }
  s.finder = std::make_unique<Finder>();
  s.finder->Grow(s.size + 1);
  for (uint32_t i = 0; i < s.size; ++i) {
    s.finder->Insert(s.edges[i].dst, i);
  }
}

uint32_t DynamicGraph::Insert(VertexId src, VertexId dst, double bias) {
  return Insert(src, dst, bias,
                next_timestamp_.fetch_add(1, std::memory_order_relaxed));
}

uint32_t DynamicGraph::Insert(VertexId src, VertexId dst, double bias,
                              uint32_t timestamp) {
  Slot& s = slots_[src];
  if (s.size == s.capacity) {
    Grow(s);
  }
  const uint32_t index = s.size;
  s.edges[s.size++] = Edge{dst, timestamp, bias};
  num_edges_.fetch_add(1, std::memory_order_relaxed);
  if (s.finder != nullptr) {
    s.finder->Insert(dst, index);
  } else if (s.size >= kFinderThreshold) {
    EnsureFinder(src);
  }
  return index;
}

DynamicGraph::SwapRemoveResult DynamicGraph::SwapRemove(VertexId src,
                                                        uint32_t index) {
  Slot& s = slots_[src];
  SwapRemoveResult result;
  result.removed = s.edges[index];
  const uint32_t last = s.size - 1;
  if (s.finder != nullptr) {
    s.finder->Erase(result.removed.dst, index);
  }
  if (index != last) {
    const Edge tail = s.edges[last];
    s.edges[index] = tail;
    result.moved = true;
    result.moved_from = last;
    result.moved_to = index;
    result.moved_edge = tail;
    if (s.finder != nullptr) {
      s.finder->Reindex(tail.dst, last, index);
    }
  }
  --s.size;
  num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

std::vector<uint32_t> DynamicGraph::CollectMatches(VertexId src, VertexId dst) const {
  const Slot& s = slots_[src];
  std::vector<uint32_t> matches;
  if (s.finder != nullptr) {
    const Finder& f = *s.finder;
    if (!f.table.empty()) {
      std::size_t pos = HashDst(dst) & f.Mask();
      while (f.table[pos].index != Finder::kEmpty) {
        const auto& e = f.table[pos];
        if (e.index != Finder::kTombstone && e.dst == dst) {
          matches.push_back(e.index);
        }
        pos = (pos + 1) & f.Mask();
      }
    }
  } else {
    for (uint32_t i = 0; i < s.size; ++i) {
      if (s.edges[i].dst == dst) {
        matches.push_back(i);
      }
    }
  }
  // Equal timestamps (epoch-stamped duplicates) break ties by neighbor
  // index so the order stays a pure function of the update sequence.
  std::sort(matches.begin(), matches.end(), [&s](uint32_t a, uint32_t b) {
    if (s.edges[a].timestamp != s.edges[b].timestamp) {
      return s.edges[a].timestamp < s.edges[b].timestamp;
    }
    return a < b;
  });
  return matches;
}

std::vector<DynamicGraph::MoveRecord> DynamicGraph::BatchSwapRemove(
    VertexId src, std::span<const uint32_t> sorted_idxs) {
  Slot& s = slots_[src];
  std::vector<MoveRecord> moves;
  const uint32_t n = static_cast<uint32_t>(sorted_idxs.size());
  if (n == 0) {
    return moves;
  }
  const uint32_t m = s.size;
  const uint32_t window_begin = m - n;

  // Drop finder entries for every victim before any slot is overwritten.
  if (s.finder != nullptr) {
    for (uint32_t idx : sorted_idxs) {
      s.finder->Erase(s.edges[idx].dst, idx);
    }
  }

  // Phase 1: survivors of the tail window [m-n, m) are the fillers; the
  // gamma victims inside the window are simply dropped (Fig 10b).
  std::vector<std::pair<uint32_t, Edge>> fillers;  // (original index, edge)
  {
    std::size_t cursor = std::lower_bound(sorted_idxs.begin(), sorted_idxs.end(),
                                          window_begin) -
                         sorted_idxs.begin();
    for (uint32_t pos = window_begin; pos < m; ++pos) {
      if (cursor < sorted_idxs.size() && sorted_idxs[cursor] == pos) {
        ++cursor;
      } else {
        fillers.emplace_back(pos, s.edges[pos]);
      }
    }
  }

  // Phase 2: the n - gamma front holes take the n - gamma guaranteed
  // survivors.
  std::size_t filler_cursor = 0;
  for (uint32_t idx : sorted_idxs) {
    if (idx >= window_begin) {
      break;
    }
    const auto& [from, edge] = fillers[filler_cursor++];
    s.edges[idx] = edge;
    if (s.finder != nullptr) {
      s.finder->Reindex(edge.dst, from, idx);
    }
    moves.push_back(MoveRecord{from, idx, edge});
  }
  s.size = m - n;
  num_edges_.fetch_sub(n, std::memory_order_relaxed);
  return moves;
}

std::optional<uint32_t> DynamicGraph::FindEarliest(VertexId src, VertexId dst) const {
  const Slot& s = slots_[src];
  uint32_t best_index = kInvalidVertex;
  uint32_t best_ts = 0xFFFFFFFFu;
  if (s.finder != nullptr) {
    const Finder& f = *s.finder;
    if (f.table.empty()) {
      return std::nullopt;
    }
    std::size_t pos = HashDst(dst) & f.Mask();
    while (f.table[pos].index != Finder::kEmpty) {
      const auto& e = f.table[pos];
      if (e.index != Finder::kTombstone && e.dst == dst) {
        const uint32_t ts = s.edges[e.index].timestamp;
        if (ts < best_ts || (ts == best_ts && e.index < best_index)) {
          best_ts = ts;
          best_index = e.index;
        }
      }
      pos = (pos + 1) & f.Mask();
    }
  } else {
    for (uint32_t i = 0; i < s.size; ++i) {
      if (s.edges[i].dst == dst && s.edges[i].timestamp < best_ts) {
        best_ts = s.edges[i].timestamp;
        best_index = i;
      }
    }
  }
  if (best_index == kInvalidVertex) {
    return std::nullopt;
  }
  return best_index;
}

bool DynamicGraph::HasEdge(VertexId src, VertexId dst) const {
  return FindEarliest(src, dst).has_value();
}

void DynamicGraph::AddVertices(VertexId count) {
  slots_.resize(slots_.size() + count);
}

std::size_t DynamicGraph::MemoryBytes() const {
  std::size_t total = slots_.size() * sizeof(Slot);
  for (const Slot& s : slots_) {
    total += static_cast<std::size_t>(s.capacity) * sizeof(Edge);
    if (s.finder != nullptr) {
      total += s.finder->table.size() * sizeof(Finder::Entry) + sizeof(Finder);
    }
  }
  return total;
}

}  // namespace bingo::graph
