// Fundamental graph types shared across the library.

#ifndef BINGO_SRC_GRAPH_TYPES_H_
#define BINGO_SRC_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

namespace bingo::graph {

using VertexId = uint32_t;

inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

// One directed adjacency entry. Biases are stored as doubles at the storage
// layer; integer-bias mode (the paper's default) uses exactly-representable
// integer values and the sampler layer interprets them as uint64. The
// timestamp implements the paper's duplicate-edge rule (§5.2): duplicated
// insertions of the same edge are allowed, and a deletion removes the
// earliest surviving version first.
struct Edge {
  VertexId dst = kInvalidVertex;
  uint32_t timestamp = 0;
  double bias = 1.0;
};
static_assert(sizeof(Edge) == 16, "Edge should stay 16 bytes");

// A (src, dst) pair used by generators and loaders.
struct EdgePair {
  VertexId src;
  VertexId dst;
};

using EdgePairList = std::vector<EdgePair>;

// A weighted edge used for bulk construction. `timestamp` is the edge's
// creation time in logical epochs (see core/bias_pipeline.h); bulk loaders
// default it to 0 = "as old as the graph".
struct WeightedEdge {
  VertexId src;
  VertexId dst;
  double bias;
  uint32_t timestamp = 0;
};

using WeightedEdgeList = std::vector<WeightedEdge>;

// One dynamic-graph mutation request (§5.2 batched updates).
//
// kAdvanceTime is the temporal-decay clock tick: it carries no edge — src
// and dst stay kInvalidVertex — and `timestamp` holds the NEW logical epoch.
// Stores rescale every stored bias by decay^(age delta) and re-bucket, so
// journaling/recovery/replication see it as an ordinary batched update.
struct Update {
  enum class Kind : uint8_t { kInsert, kDelete, kAdvanceTime };
  Kind kind = Kind::kInsert;
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  double bias = 1.0;           // only meaningful for insertions
  uint32_t timestamp = 0;      // insert: creation epoch; advance: new epoch
};

// The clock-tick update: applied first within its batch, broadcast to every
// shard, skipped by per-vertex grouping and vertex-growth scans.
inline Update MakeAdvanceTime(uint32_t new_epoch) {
  Update u;
  u.kind = Update::Kind::kAdvanceTime;
  u.bias = 0.0;
  u.timestamp = new_epoch;
  return u;
}

using UpdateList = std::vector<Update>;

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_TYPES_H_
