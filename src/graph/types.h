// Fundamental graph types shared across the library.

#ifndef BINGO_SRC_GRAPH_TYPES_H_
#define BINGO_SRC_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

namespace bingo::graph {

using VertexId = uint32_t;

inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

// One directed adjacency entry. Biases are stored as doubles at the storage
// layer; integer-bias mode (the paper's default) uses exactly-representable
// integer values and the sampler layer interprets them as uint64. The
// timestamp implements the paper's duplicate-edge rule (§5.2): duplicated
// insertions of the same edge are allowed, and a deletion removes the
// earliest surviving version first.
struct Edge {
  VertexId dst = kInvalidVertex;
  uint32_t timestamp = 0;
  double bias = 1.0;
};
static_assert(sizeof(Edge) == 16, "Edge should stay 16 bytes");

// A (src, dst) pair used by generators and loaders.
struct EdgePair {
  VertexId src;
  VertexId dst;
};

using EdgePairList = std::vector<EdgePair>;

// A weighted edge used for bulk construction.
struct WeightedEdge {
  VertexId src;
  VertexId dst;
  double bias;
};

using WeightedEdgeList = std::vector<WeightedEdge>;

// One dynamic-graph mutation request (§5.2 batched updates).
struct Update {
  enum class Kind : uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  double bias = 1.0;  // only meaningful for insertions
};

using UpdateList = std::vector<Update>;

}  // namespace bingo::graph

#endif  // BINGO_SRC_GRAPH_TYPES_H_
