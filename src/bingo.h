// Umbrella header for the Bingo library.
//
// Bingo is a random walk engine for dynamically changing graphs built
// around radix-based bias factorization (EuroSys'25). Quick tour:
//
//   graph::DynamicGraph   — pooled dynamic adjacency storage
//   core::BingoStore      — the Bingo sampling structure over a graph
//                           (streaming + batched updates, O(1) sampling)
//   walk::RunDeepWalk / RunNode2vec / RunPpr / RunSimpleSampling
//                         — walk applications over any sampler store
//   walk::AliasStore / ItsStore / ReservoirStore
//                         — baseline engines for comparison
//
// See examples/quickstart.cpp for a minimal end-to-end program.

#ifndef BINGO_SRC_BINGO_H_
#define BINGO_SRC_BINGO_H_

#include "src/core/bingo_store.h"
#include "src/core/block_cache.h"
#include "src/core/lambda.h"
#include "src/core/radix_base.h"
#include "src/core/snapshot.h"
#include "src/core/vertex_sampler.h"
#include "src/graph/bias.h"
#include "src/graph/csr_mmap.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/graph/update_stream.h"
#include "src/util/numa.h"
#include "src/util/resource.h"
#include "src/util/rng.h"
#include "src/util/scratch.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/walk/analytics.h"
#include "src/walk/apps.h"
#include "src/walk/baseline_stores.h"
#include "src/walk/batcher.h"
#include "src/walk/engine.h"
#include "src/walk/incremental.h"
#include "src/walk/index_service.h"
#include "src/walk/fused.h"
#include "src/walk/ooc.h"
#include "src/walk/ooc_service.h"
#include "src/walk/ooc_store.h"
#include "src/walk/partitioned.h"
#include "src/walk/query_batcher.h"
#include "src/walk/service.h"
#include "src/walk/sharded_service.h"
#include "src/walk/store.h"

#endif  // BINGO_SRC_BINGO_H_
