// The decimal group of §4.3: after lambda-scaling, the fractional remainder
// of every neighbor's bias is collected into one extra group. Inter-group
// sampling weighs this group by W_D = sum of all fractional parts; when it
// is selected, intra-group sampling uses ITS or rejection (the two options
// named by the paper).
//
// Fractions are stored as 32-bit fixed point (units of 2^-32), so W_D and
// the ITS prefix sums are exact integers; see DESIGN.md §4.4.

#ifndef BINGO_SRC_CORE_DECIMAL_GROUP_H_
#define BINGO_SRC_CORE_DECIMAL_GROUP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/rng.h"

namespace bingo::core {

class DecimalGroup {
 public:
  enum class Policy : uint8_t { kRejection, kIts };

  static constexpr uint32_t kNoPosition = 0xFFFFFFFFu;

  explicit DecimalGroup(Policy policy = Policy::kRejection) : policy_(policy) {}

  Policy GetPolicy() const { return policy_; }

  // Switches the intra-group sampling policy, rebuilding the prefix-sum
  // array when moving to ITS.
  void SetPolicy(Policy policy);

  // Adds neighbor `idx` with fractional weight `dec` (0 < dec < 2^32).
  // O(1) for both policies (ITS appends to the prefix-sum array).
  void Insert(uint32_t idx, uint32_t dec);

  // Removes neighbor `idx` (must be present). O(1) for rejection;
  // O(|G| - pos) for ITS (suffix rewrite, matching the paper's Table 1).
  void Remove(uint32_t idx);

  // Re-points member `from` to neighbor index `to` (weights unchanged).
  void Rename(uint32_t from, uint32_t to);

  bool Contains(uint32_t idx) const {
    return idx < inv_.size() && inv_[idx] != kNoPosition;
  }

  uint32_t DecOf(uint32_t idx) const { return dec_[inv_[idx]]; }

  uint32_t Count() const { return static_cast<uint32_t>(idx_.size()); }
  bool Empty() const { return idx_.empty(); }

  // W_D in units of 2^-32.
  uint64_t TotalFixed() const { return total_fixed_; }

  // Draws a member with probability dec_i / W_D. Requires TotalFixed() > 0.
  uint32_t Sample(util::Rng& rng) const;

  // (idx, dec) pairs, for audits and implied-distribution reconstruction.
  void CollectMembers(std::vector<std::pair<uint32_t, uint32_t>>& out) const;

  void Clear();

  std::size_t MemoryBytes() const {
    return idx_.capacity() * sizeof(uint32_t) + dec_.capacity() * sizeof(uint32_t) +
           inv_.capacity() * sizeof(uint32_t) + cdf_.capacity() * sizeof(uint64_t);
  }

  std::string CheckInvariants() const;

 private:
  void EnsureInvSize(uint32_t min_size);
  void RebuildCdfFrom(std::size_t pos);

  Policy policy_;
  std::vector<uint32_t> idx_;  // member neighbor indices
  std::vector<uint32_t> dec_;  // fractional weights, parallel to idx_
  std::vector<uint32_t> inv_;  // neighbor index -> member position
  std::vector<uint64_t> cdf_;  // ITS policy only: exact prefix sums
  uint64_t total_fixed_ = 0;
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_DECIMAL_GROUP_H_
