// Append-only write-ahead log for update batches.
//
// Durability in this codebase follows the paper's Theorem 4.1: sampling
// structures are a pure function of the adjacency (+ config), so the
// durable state is exactly the edge multiset — a base snapshot
// (core/snapshot.h) plus the stream of ApplyBatch update batches applied
// since it. The WAL journals that stream: one framed, CRC'd record per
// batch, appended before the batch mutates any replica, so a crash loses at
// most the batches whose records never reached the file (none, with
// fsync_on_commit).
//
// File layout (little-endian):
//   file header   magic, version, start_seq, header CRC
//   record*       record magic, seq, payload bytes, payload CRC,
//                 header CRC, payload
// Payload: update count, then packed updates — v2 (current) records are
// {kind u8, src u32, dst u32, timestamp u32, bias f64}; v1 files (no
// timestamp, insert/delete kinds only) still replay, with timestamp 0.
//
// Record sequence numbers are contiguous: the first record after the header
// carries start_seq + 1. Replay delivers exactly the longest prefix of
// complete, checksummed, contiguous records and reports where it stopped —
// a torn tail (crash mid-append) truncates cleanly instead of corrupting
// recovery, and OpenForAppend resumes writing from that point.

#ifndef BINGO_SRC_CORE_WAL_H_
#define BINGO_SRC_CORE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/graph/types.h"

namespace bingo::core {

struct WalOptions {
  // fsync after every Append: a true return means the record is on disk.
  // Off, durability is deferred to Sync() / Checkpoint (group commit).
  bool fsync_on_commit = false;
};

// Outcome of scanning a WAL file. `valid_bytes` is the byte length of the
// header plus every complete record — the prefix OpenForAppend keeps.
struct WalReplayResult {
  bool opened = false;      // file existed and was readable
  bool header_ok = false;   // file header present, magic/version/CRC valid
  bool header_torn = false;  // file shorter than a header (crash mid-create);
                             // distinct from a full-but-corrupt header
  uint32_t version = 0;    // file format version (0 until the header parses)
  uint64_t start_seq = 0;  // from the file header
  uint64_t last_seq = 0;   // seq of the last complete record (start_seq if none)
  uint64_t records = 0;    // complete records decoded
  uint64_t records_replayed = 0;  // records delivered (seq > after_seq)
  uint64_t updates_replayed = 0;
  bool truncated_tail = false;  // stopped at an incomplete/corrupt record
  uint64_t valid_bytes = 0;
};

// Scans `path` and invokes `fn(seq, batch)` for every complete record with
// seq > after_seq, in order. Stops at the first incomplete or corrupt
// record (prefix rule). `fn` may be null to just probe the file.
WalReplayResult ReplayWal(
    const std::string& path, uint64_t after_seq,
    const std::function<void(uint64_t seq, const graph::UpdateList& batch)>& fn);

class WalWriter {
 public:
  // Starts a fresh WAL at `path` (truncating any existing file) whose first
  // record will carry start_seq + 1. The header is written and fsync'd
  // before this returns. Nullptr on I/O failure.
  static std::unique_ptr<WalWriter> Create(const std::string& path,
                                           uint64_t start_seq,
                                           WalOptions options = {});

  // Resumes an existing WAL after a ReplayWal scan: truncates the file to
  // `replay.valid_bytes` (dropping a torn tail) and appends from
  // replay.last_seq. Nullptr on I/O failure or if the scan found no valid
  // header.
  static std::unique_ptr<WalWriter> OpenForAppend(const std::string& path,
                                                  const WalReplayResult& replay,
                                                  WalOptions options = {});

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Journals one batch as the next record. False on I/O failure, after
  // which the writer is poisoned (every later Append fails too).
  bool Append(const graph::UpdateList& updates);

  // fsyncs everything appended so far.
  bool Sync();

  uint64_t StartSeq() const { return start_seq_; }
  uint64_t LastSeq() const { return last_seq_; }
  uint64_t BytesWritten() const { return bytes_; }  // current file length

 private:
  WalWriter(int fd, uint32_t version, uint64_t start_seq, uint64_t last_seq,
            uint64_t bytes, WalOptions options);

  int fd_ = -1;
  // Record encoding version of the file being appended to. Create() writes
  // the current version; OpenForAppend keeps the existing file's. A v1
  // writer poisons on updates it cannot represent (kAdvanceTime, nonzero
  // timestamps) rather than journal them lossily.
  uint32_t version_ = 0;
  bool ok_ = true;
  uint64_t start_seq_ = 0;
  uint64_t last_seq_ = 0;
  uint64_t bytes_ = 0;
  WalOptions options_;
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_WAL_H_
