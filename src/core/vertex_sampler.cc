#include "src/core/vertex_sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "src/sampling/batch_kernels.h"
#include "src/util/bitops.h"

namespace bingo::core {

VertexMemoryBreakdown& VertexMemoryBreakdown::operator+=(
    const VertexMemoryBreakdown& other) {
  for (std::size_t i = 0; i < group_bytes.size(); ++i) {
    group_bytes[i] += other.group_bytes[i];
  }
  decimal_bytes += other.decimal_bytes;
  alias_bytes += other.alias_bytes;
  return *this;
}

void VertexSampler::EnsureGroup(int k) {
  if (static_cast<int>(groups_.size()) <= k) {
    groups_.resize(k + 1);
  }
}

void VertexSampler::Build(std::span<const graph::Edge> adj) {
  assert(config_ != nullptr);
  groups_.clear();
  decimal_.Clear();
  decimal_.SetPolicy(config_->decimal_policy);
  const uint32_t degree = static_cast<uint32_t>(adj.size());

  // Gather members per radix position, then build each group directly in
  // its classified representation (avoids insert-then-convert churn).
  std::vector<std::vector<uint32_t>> members;
  for (uint32_t idx = 0; idx < degree; ++idx) {
    const BiasParts parts = Split(adj[idx].bias);
    util::ForEachSetBit(parts.int_bits, [&](int k) {
      if (static_cast<int>(members.size()) <= k) {
        members.resize(k + 1);
      }
      members[static_cast<std::size_t>(k)].push_back(idx);
    });
    if (parts.dec_fixed != 0) {
      decimal_.Insert(idx, parts.dec_fixed);
    }
  }
  groups_.resize(members.size());
  for (int k = 0; k < static_cast<int>(members.size()); ++k) {
    const auto& m = members[static_cast<std::size_t>(k)];
    if (m.empty()) {
      continue;
    }
    const GroupKind kind = ClassifyGroup(m.size(), degree, config_->adaptive);
    groups_[static_cast<std::size_t>(k)].RebuildAs(kind, m, degree);
  }
  RebuildInterGroupAlias();
}

void VertexSampler::InsertEdge(std::span<const graph::Edge> adj, uint32_t idx) {
  const BiasParts parts = Split(adj[idx].bias);
  const uint32_t degree = static_cast<uint32_t>(adj.size());
  util::ForEachSetBit(parts.int_bits, [&](int k) {
    EnsureGroup(k);
    groups_[static_cast<std::size_t>(k)].Insert(idx, degree);
  });
  if (parts.dec_fixed != 0) {
    decimal_.Insert(idx, parts.dec_fixed);
  }
}

void VertexSampler::RemoveEdge(std::span<const graph::Edge> adj, uint32_t idx) {
  const BiasParts parts = Split(adj[idx].bias);
  util::ForEachSetBit(parts.int_bits, [&](int k) {
    groups_[static_cast<std::size_t>(k)].Remove(idx);
  });
  if (parts.dec_fixed != 0) {
    decimal_.Remove(idx);
  }
}

void VertexSampler::RenameIndex(double moved_bias, uint32_t from, uint32_t to) {
  const BiasParts parts = Split(moved_bias);
  util::ForEachSetBit(parts.int_bits, [&](int k) {
    groups_[static_cast<std::size_t>(k)].Rename(from, to);
  });
  if (parts.dec_fixed != 0) {
    decimal_.Rename(from, to);
  }
}

void VertexSampler::RemoveEdgesBatch(std::span<const graph::Edge> adj,
                                     std::span<const uint32_t> idxs) {
  // Bucket the victims by radix group, then run one two-phase
  // delete-and-swap per affected group (Fig 10b).
  std::vector<std::vector<uint32_t>> per_group;
  for (uint32_t idx : idxs) {
    const BiasParts parts = Split(adj[idx].bias);
    util::ForEachSetBit(parts.int_bits, [&](int k) {
      if (static_cast<int>(per_group.size()) <= k) {
        per_group.resize(k + 1);
      }
      per_group[static_cast<std::size_t>(k)].push_back(idx);
    });
    if (parts.dec_fixed != 0) {
      decimal_.Remove(idx);
    }
  }
  for (int k = 0; k < static_cast<int>(per_group.size()); ++k) {
    const auto& victims = per_group[static_cast<std::size_t>(k)];
    if (!victims.empty()) {
      groups_[static_cast<std::size_t>(k)].BatchRemove(victims);
    }
  }
}

void VertexSampler::FinishUpdate(std::span<const graph::Edge> adj) {
  // BS mode also reclassifies: Insert() may have escalated an empty group
  // through the one-element representation, and BS requires every
  // non-empty group to be regular.
  ReclassifyGroups(adj);
  RebuildInterGroupAlias();
}

std::vector<uint32_t> VertexSampler::ScanMembers(std::span<const graph::Edge> adj,
                                                 int k) const {
  std::vector<uint32_t> members;
  for (uint32_t idx = 0; idx < adj.size(); ++idx) {
    const BiasParts parts = Split(adj[idx].bias);
    if ((parts.int_bits >> k) & 1ULL) {
      members.push_back(idx);
    }
  }
  return members;
}

void VertexSampler::ReclassifyGroups(std::span<const graph::Edge> adj) {
  const uint32_t degree = static_cast<uint32_t>(adj.size());
  for (int k = 0; k < static_cast<int>(groups_.size()); ++k) {
    RadixGroup& group = groups_[static_cast<std::size_t>(k)];
    const GroupKind current = group.Kind();
    const GroupKind target =
        ClassifyGroup(group.Count(), degree, config_->adaptive);
    if (current == target) {
      continue;
    }
    // Conversion accounting (Table 4) only makes sense for the adaptive
    // representation; BS conversions are representation plumbing.
    if (config_->conversion_stats != nullptr && config_->adaptive.adaptive) {
      config_->conversion_stats->Record(current, target);
    }
    if (target == GroupKind::kEmpty) {
      group.Clear();
      continue;
    }
    std::vector<uint32_t> members;
    if (current == GroupKind::kDense) {
      members = ScanMembers(adj, k);
    } else {
      group.CollectMembers(members);
    }
    group.RebuildAs(target, members, degree);
  }
}

void VertexSampler::RebuildInterGroupAlias() {
  // Runs on every update; scratch is thread-local to avoid per-call heap
  // traffic (the table itself reuses its own capacity across Build calls).
  static thread_local std::vector<double> weights;
  weights.clear();
  weights.reserve(groups_.size() + 1);
  alias_groups_.clear();
  alias_groups_.reserve(groups_.size() + 1);
  for (int k = 0; k < static_cast<int>(groups_.size()); ++k) {
    const RadixGroup& group = groups_[static_cast<std::size_t>(k)];
    if (group.Count() > 0) {
      weights.push_back(GroupWeight(k, group.Count()));
      alias_groups_.push_back(static_cast<int8_t>(k));
    }
  }
  if (decimal_.TotalFixed() > 0) {
    weights.push_back(std::ldexp(static_cast<double>(decimal_.TotalFixed()),
                                 -kDecimalBits));
    alias_groups_.push_back(kDecimalGroupId);
  }
  alias_.Build(weights);
}

uint32_t VertexSampler::SampleIndex(std::span<const graph::Edge> adj,
                                    util::Rng& rng) const {
  if (alias_groups_.empty()) {
    return kNoNeighbor;
  }
  // Degree-1 vertices (the bulk of a power-law graph) have exactly one
  // possible outcome; skip both sampling stages.
  if (adj.size() == 1) {
    return 0;
  }
  // Stage (i): inter-group alias sampling. A single-group space needs no
  // alias draw.
  const uint32_t slot =
      alias_groups_.size() == 1 ? 0 : alias_.Sample(rng);
  const int k = alias_groups_[slot];
  if (k == kDecimalGroupId) {
    return decimal_.Sample(rng);
  }
  const RadixGroup& group = groups_[static_cast<std::size_t>(k)];
  // Stage (ii): uniform intra-group pick.
  if (group.Kind() == GroupKind::kDense) {
    // Rejection on the adjacency array (§5.1): accept a uniformly-drawn
    // neighbor iff its bias has bit k set; acceptance ratio > alpha%.
    for (;;) {
      const uint32_t idx = static_cast<uint32_t>(rng.NextBounded(adj.size()));
      const BiasParts parts = Split(adj[idx].bias);
      if ((parts.int_bits >> k) & 1ULL) {
        return idx;
      }
    }
  }
  return group.PickUniform(rng);
}

void VertexSampler::SampleIndexBatch(std::span<const graph::Edge> adj,
                                     util::Rng* const* rngs, std::size_t n,
                                     uint32_t* out) const {
  // The early-outs mirror SampleIndex exactly: neither consumes a variate.
  if (alias_groups_.empty()) {
    std::fill_n(out, n, kNoNeighbor);
    return;
  }
  if (adj.size() == 1) {
    std::fill_n(out, n, 0u);
    return;
  }
  constexpr std::size_t kTile = 64;
  uint32_t slots[kTile];
  uint32_t pending[kTile];  // tile-local walker indices still in rejection
  uint32_t cand[kTile];
  double cand_bias[kTile];
  uint64_t cand_bits[kTile];
  for (std::size_t begin = 0; begin < n; begin += kTile) {
    const std::size_t count = std::min(kTile, n - begin);
    // Stage (i): inter-group alias draw, lane-batched. A single-group
    // space draws nothing — same skip as SampleIndex.
    if (alias_groups_.size() == 1) {
      std::fill_n(slots, count, 0u);
    } else {
      alias_.SampleBatch(rngs + begin, count, slots);
    }
    // Stage (ii): decimal and list-backed groups finish per walker (their
    // follow-up draws come from that walker's own stream, in SampleIndex's
    // order); dense groups queue for the batched rejection rounds.
    std::size_t num_pending = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const int k = alias_groups_[slots[i]];
      if (k == kDecimalGroupId) {
        out[begin + i] = decimal_.Sample(*rngs[begin + i]);
        continue;
      }
      const RadixGroup& group = groups_[static_cast<std::size_t>(k)];
      if (group.Kind() == GroupKind::kDense) {
        pending[num_pending++] = static_cast<uint32_t>(i);
        continue;
      }
      out[begin + i] = group.PickUniform(*rngs[begin + i]);
    }
    // Dense rejection (§5.1) in rounds: each round every still-rejected
    // walker draws one candidate from its own stream — the same candidate
    // sequence the scalar loop draws — and all bit tests resolve as one
    // SplitBiasIntBatch lane pass. Dense groups guarantee acceptance
    // probability > alpha%, so rounds drain geometrically.
    while (num_pending > 0) {
      for (std::size_t p = 0; p < num_pending; ++p) {
        const std::size_t i = pending[p];
        cand[p] =
            static_cast<uint32_t>(rngs[begin + i]->NextBounded(adj.size()));
        cand_bias[p] = adj[cand[p]].bias;
      }
      sampling::SplitBiasIntBatch(cand_bias, num_pending, config_->lambda,
                                  cand_bits);
      std::size_t still = 0;
      for (std::size_t p = 0; p < num_pending; ++p) {
        const std::size_t i = pending[p];
        const int k = alias_groups_[slots[i]];
        if ((cand_bits[p] >> k) & 1ULL) {
          out[begin + i] = cand[p];
        } else {
          pending[still++] = pending[p];
        }
      }
      num_pending = still;
    }
  }
}

std::vector<double> VertexSampler::ImpliedDistribution(
    std::span<const graph::Edge> adj) const {
  std::vector<double> probs(adj.size(), 0.0);
  const std::vector<double> group_probs = alias_.ImpliedProbabilities();
  for (std::size_t slot = 0; slot < alias_groups_.size(); ++slot) {
    const double p_group = group_probs[slot];
    const int k = alias_groups_[slot];
    if (k == kDecimalGroupId) {
      std::vector<std::pair<uint32_t, uint32_t>> members;
      decimal_.CollectMembers(members);
      const double total = static_cast<double>(decimal_.TotalFixed());
      for (const auto& [idx, dec] : members) {
        probs[idx] += p_group * static_cast<double>(dec) / total;
      }
      continue;
    }
    const RadixGroup& group = groups_[static_cast<std::size_t>(k)];
    std::vector<uint32_t> members;
    if (group.Kind() == GroupKind::kDense) {
      members = ScanMembers(adj, k);
    } else {
      group.CollectMembers(members);
    }
    const double share = p_group / static_cast<double>(members.size());
    for (uint32_t idx : members) {
      probs[idx] += share;
    }
  }
  return probs;
}

std::string VertexSampler::CheckInvariants(std::span<const graph::Edge> adj) const {
  const uint32_t degree = static_cast<uint32_t>(adj.size());
  // Ground truth: per-k membership recomputed from the adjacency.
  std::vector<std::vector<uint32_t>> expected;
  uint64_t expected_decimal_total = 0;
  uint32_t expected_decimal_count = 0;
  for (uint32_t idx = 0; idx < degree; ++idx) {
    const BiasParts parts = Split(adj[idx].bias);
    util::ForEachSetBit(parts.int_bits, [&](int k) {
      if (static_cast<int>(expected.size()) <= k) {
        expected.resize(k + 1);
      }
      expected[static_cast<std::size_t>(k)].push_back(idx);
    });
    if (parts.dec_fixed != 0) {
      expected_decimal_total += parts.dec_fixed;
      ++expected_decimal_count;
      if (!decimal_.Contains(idx) || decimal_.DecOf(idx) != parts.dec_fixed) {
        return "decimal group missing or wrong weight for index " +
               std::to_string(idx);
      }
    }
  }
  if (decimal_.TotalFixed() != expected_decimal_total ||
      decimal_.Count() != expected_decimal_count) {
    return "decimal group aggregate mismatch";
  }
  if (const std::string err = decimal_.CheckInvariants(); !err.empty()) {
    return err;
  }

  for (int k = 0; k < static_cast<int>(std::max(expected.size(), groups_.size()));
       ++k) {
    const std::size_t uk = static_cast<std::size_t>(k);
    const uint64_t want =
        uk < expected.size() ? expected[uk].size() : 0;
    const uint64_t have = uk < groups_.size() ? groups_[uk].Count() : 0;
    if (want != have) {
      return "group 2^" + std::to_string(k) + " count mismatch: want " +
             std::to_string(want) + " have " + std::to_string(have);
    }
    if (have == 0) {
      continue;
    }
    const RadixGroup& group = groups_[uk];
    const GroupKind want_kind =
        ClassifyGroup(have, degree, config_->adaptive);
    if (group.Kind() != want_kind) {
      return "group 2^" + std::to_string(k) + " kind mismatch: want " +
             std::string(ToString(want_kind)) + " have " +
             std::string(ToString(group.Kind()));
    }
    if (const std::string err = group.CheckInvariants(); !err.empty()) {
      return "group 2^" + std::to_string(k) + ": " + err;
    }
    if (group.Kind() != GroupKind::kDense) {
      for (uint32_t idx : expected[uk]) {
        if (!group.Contains(idx)) {
          return "group 2^" + std::to_string(k) + " missing member " +
                 std::to_string(idx);
        }
      }
    }
  }

  // The alias table must cover exactly the non-empty groups with the
  // implicit weights W(p_k) = 2^k * count.
  std::size_t active = 0;
  for (int k = 0; k < static_cast<int>(groups_.size()); ++k) {
    if (groups_[static_cast<std::size_t>(k)].Count() > 0) {
      ++active;
    }
  }
  if (decimal_.TotalFixed() > 0) {
    ++active;
  }
  if (alias_groups_.size() != active || alias_.Size() != active) {
    return "inter-group alias table stale";
  }
  return {};
}

VertexMemoryBreakdown VertexSampler::MemoryBreakdown() const {
  VertexMemoryBreakdown breakdown;
  for (const RadixGroup& group : groups_) {
    breakdown.group_bytes[static_cast<int>(group.Kind())] += group.MemoryBytes();
  }
  breakdown.group_bytes[static_cast<int>(GroupKind::kEmpty)] +=
      groups_.capacity() * sizeof(RadixGroup);
  breakdown.decimal_bytes = decimal_.MemoryBytes();
  breakdown.alias_bytes =
      alias_.MemoryBytes() + alias_groups_.capacity() * sizeof(int8_t);
  return breakdown;
}

void VertexSampler::CountGroupKinds(std::array<uint64_t, 5>& counts) const {
  for (const RadixGroup& group : groups_) {
    if (group.Kind() != GroupKind::kEmpty) {
      ++counts[static_cast<int>(group.Kind())];
    }
  }
}

int VertexSampler::NumActiveGroups() const {
  int active = 0;
  for (const RadixGroup& group : groups_) {
    if (group.Count() > 0) {
      ++active;
    }
  }
  return active;
}

}  // namespace bingo::core
