#include "src/core/decimal_group.h"

#include <algorithm>
#include <cassert>

namespace bingo::core {

void DecimalGroup::SetPolicy(Policy policy) {
  if (policy == policy_) {
    return;
  }
  policy_ = policy;
  if (policy_ == Policy::kIts) {
    cdf_.resize(dec_.size());
    RebuildCdfFrom(0);
  } else {
    cdf_.clear();
    cdf_.shrink_to_fit();
  }
}

void DecimalGroup::EnsureInvSize(uint32_t min_size) {
  if (inv_.size() < min_size) {
    inv_.resize(std::max<std::size_t>(min_size, inv_.size() * 2), kNoPosition);
  }
}

void DecimalGroup::Insert(uint32_t idx, uint32_t dec) {
  assert(dec > 0);
  EnsureInvSize(idx + 1);
  assert(inv_[idx] == kNoPosition);
  inv_[idx] = static_cast<uint32_t>(idx_.size());
  idx_.push_back(idx);
  dec_.push_back(dec);
  total_fixed_ += dec;
  if (policy_ == Policy::kIts) {
    cdf_.push_back(total_fixed_);
  }
}

void DecimalGroup::Remove(uint32_t idx) {
  assert(Contains(idx));
  const uint32_t pos = inv_[idx];
  const uint32_t last = static_cast<uint32_t>(idx_.size()) - 1;
  total_fixed_ -= dec_[pos];
  if (pos != last) {
    idx_[pos] = idx_[last];
    dec_[pos] = dec_[last];
    inv_[idx_[pos]] = pos;
  }
  idx_.pop_back();
  dec_.pop_back();
  inv_[idx] = kNoPosition;
  if (policy_ == Policy::kIts) {
    cdf_.pop_back();
    RebuildCdfFrom(pos);
  }
}

void DecimalGroup::Rename(uint32_t from, uint32_t to) {
  assert(Contains(from));
  const uint32_t pos = inv_[from];
  inv_[from] = kNoPosition;
  EnsureInvSize(to + 1);
  inv_[to] = pos;
  idx_[pos] = to;
}

void DecimalGroup::RebuildCdfFrom(std::size_t pos) {
  uint64_t running = pos == 0 ? 0 : cdf_[pos - 1];
  for (std::size_t i = pos; i < dec_.size(); ++i) {
    running += dec_[i];
    cdf_[i] = running;
  }
}

uint32_t DecimalGroup::Sample(util::Rng& rng) const {
  assert(total_fixed_ > 0);
  if (policy_ == Policy::kIts) {
    const uint64_t x = rng.NextBounded(total_fixed_);
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
    return idx_[static_cast<std::size_t>(it - cdf_.begin())];
  }
  // Rejection with the trivial bound 1.0 (all fractions are < 2^32): accept
  // member m with probability dec_m / 2^32.
  for (;;) {
    const uint32_t pos = static_cast<uint32_t>(rng.NextBounded(idx_.size()));
    if (rng.NextU32() < dec_[pos]) {
      return idx_[pos];
    }
  }
}

void DecimalGroup::CollectMembers(
    std::vector<std::pair<uint32_t, uint32_t>>& out) const {
  for (std::size_t i = 0; i < idx_.size(); ++i) {
    out.emplace_back(idx_[i], dec_[i]);
  }
}

void DecimalGroup::Clear() {
  idx_.clear();
  dec_.clear();
  inv_.clear();
  cdf_.clear();
  idx_.shrink_to_fit();
  dec_.shrink_to_fit();
  inv_.shrink_to_fit();
  cdf_.shrink_to_fit();
  total_fixed_ = 0;
}

std::string DecimalGroup::CheckInvariants() const {
  if (idx_.size() != dec_.size()) {
    return "decimal group parallel arrays diverged";
  }
  uint64_t sum = 0;
  for (std::size_t pos = 0; pos < idx_.size(); ++pos) {
    if (dec_[pos] == 0) {
      return "decimal group member with zero weight";
    }
    sum += dec_[pos];
    const uint32_t idx = idx_[pos];
    if (idx >= inv_.size() || inv_[idx] != pos) {
      return "decimal group inverted index mismatch";
    }
    if (policy_ == Policy::kIts && cdf_[pos] != sum) {
      return "decimal group CDF out of sync";
    }
  }
  if (sum != total_fixed_) {
    return "decimal group total mismatch";
  }
  uint32_t live = 0;
  for (uint32_t v : inv_) {
    if (v != kNoPosition) {
      ++live;
    }
  }
  if (live != idx_.size()) {
    return "decimal group inverted index live-count mismatch";
  }
  return {};
}

}  // namespace bingo::core
