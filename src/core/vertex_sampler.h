// Per-vertex Bingo sampling structure (§4, §5.1).
//
// Holds the radix groups of one vertex plus the inter-group alias table and
// (for floating-point biases) the decimal group. Hierarchical sampling:
//   stage (i)  alias-sample a group (O(1));
//   stage (ii) uniform pick inside the group (O(1)), or rejection on the
//              adjacency array for dense groups, or decimal-group sampling.
// Streaming insert/delete cost O(K) — the radix decomposition touches one
// entry per set bit plus a K-entry alias rebuild.
//
// The sampler never owns adjacency data; every operation receives the
// source vertex's adjacency span (the graph is the single source of truth,
// and dense-group rejection reads biases straight from it).

#ifndef BINGO_SRC_CORE_VERTEX_SAMPLER_H_
#define BINGO_SRC_CORE_VERTEX_SAMPLER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/bias_pipeline.h"
#include "src/core/decimal_group.h"
#include "src/core/groups.h"
#include "src/core/radix.h"
#include "src/graph/types.h"
#include "src/sampling/alias_table.h"
#include "src/util/rng.h"

namespace bingo::core {

// Counts group-kind conversions (Table 4). Shared across vertices; batched
// updates increment concurrently.
struct ConversionStats {
  // counts[from][to], indexed by GroupKind. kEmpty rows/cols count group
  // births and deaths.
  std::array<std::array<std::atomic<uint64_t>, 5>, 5> counts{};

  void Record(GroupKind from, GroupKind to) {
    counts[static_cast<int>(from)][static_cast<int>(to)].fetch_add(
        1, std::memory_order_relaxed);
  }
  uint64_t Get(GroupKind from, GroupKind to) const {
    return counts[static_cast<int>(from)][static_cast<int>(to)].load(
        std::memory_order_relaxed);
  }
};

struct BingoConfig {
  AdaptiveConfig adaptive;  // GA vs BS and the alpha/beta thresholds
  double lambda = 1.0;      // amortization factor (§4.3); 1.0 for integers
  DecimalGroup::Policy decimal_policy = DecimalGroup::Policy::kRejection;
  ConversionStats* conversion_stats = nullptr;  // optional, for Table 4
  // Composable bias pipeline (decay × type gate). Static configuration:
  // part of the snapshot config fingerprint.
  BiasPipeline pipeline;
  // Current logical epoch. Mutable temporal state, NOT fingerprinted: it
  // advances via graph::MakeAdvanceTime batches and round-trips through the
  // snapshot header on recovery.
  uint32_t logical_epoch = 0;
};

// Memory attribution for Fig 11.
struct VertexMemoryBreakdown {
  std::array<std::size_t, 5> group_bytes{};  // indexed by GroupKind
  std::size_t decimal_bytes = 0;
  std::size_t alias_bytes = 0;

  std::size_t Total() const {
    std::size_t t = decimal_bytes + alias_bytes;
    for (std::size_t b : group_bytes) {
      t += b;
    }
    return t;
  }
  VertexMemoryBreakdown& operator+=(const VertexMemoryBreakdown& other);
};

class VertexSampler {
 public:
  static constexpr uint32_t kNoNeighbor = 0xFFFFFFFFu;

  VertexSampler() = default;
  explicit VertexSampler(const BingoConfig* config) : config_(config) {}

  void SetConfig(const BingoConfig* config) { config_ = config; }

  // Rebuilds everything from scratch (initial load, O(d·K)).
  void Build(std::span<const graph::Edge> adj);

  // --- streaming path (§4.2): one edge at a time -------------------------

  // The edge at neighbor index `idx` was just appended to `adj`; splits its
  // bias into the groups. Call FinishUpdate afterwards.
  void InsertEdge(std::span<const graph::Edge> adj, uint32_t idx);

  // The edge at `idx` is about to be removed from the adjacency; withdraws
  // its sub-biases from the groups. Call with the *pre-removal* adjacency.
  void RemoveEdge(std::span<const graph::Edge> adj, uint32_t idx);

  // The adjacency swap-with-tail moved the edge with bias `moved_bias` from
  // neighbor index `from` to `to`; re-points its group entries.
  void RenameIndex(double moved_bias, uint32_t from, uint32_t to);

  // Reclassifies groups (GA mode, Eq 9) and rebuilds the inter-group alias
  // table. O(K) plus rare conversion rebuilds.
  void FinishUpdate(std::span<const graph::Edge> adj);

  // --- batched path (§5.2): many edges, one rebuild ----------------------

  // Removes all `idxs` (sorted, unique, all present) with per-group
  // two-phase delete-and-swap. Call with the pre-removal adjacency;
  // adjacency compaction + RenameIndex calls follow, then FinishUpdate.
  void RemoveEdgesBatch(std::span<const graph::Edge> adj,
                        std::span<const uint32_t> idxs);

  // --- sampling (§4.1) ----------------------------------------------------

  // Draws a neighbor index with probability bias_i / sum(bias). Returns
  // kNoNeighbor when the vertex has no weight (e.g. no out-edges). O(1).
  uint32_t SampleIndex(std::span<const graph::Edge> adj, util::Rng& rng) const;

  // Batched draws against this vertex: out[i] is exactly what
  // SampleIndex(adj, *rngs[i]) would return. Stage (i) resolves through the
  // SIMD alias kernel; dense-group rejection runs in rounds with the radix
  // bit tests lane-batched (SplitBiasIntBatch). Each walker's variates come
  // from its own stream in SampleIndex's order, so the result is
  // bit-identical to n sequential SampleIndex calls.
  void SampleIndexBatch(std::span<const graph::Edge> adj,
                        util::Rng* const* rngs, std::size_t n,
                        uint32_t* out) const;

  // --- introspection ------------------------------------------------------

  // Exact distribution the structure implies for each neighbor index
  // (via alias implied probabilities; no sampling). Tests compare this to
  // the bias-derived ground truth.
  std::vector<double> ImpliedDistribution(std::span<const graph::Edge> adj) const;

  // Full structural audit against the adjacency. Empty string = consistent.
  std::string CheckInvariants(std::span<const graph::Edge> adj) const;

  VertexMemoryBreakdown MemoryBreakdown() const;

  // Adds this vertex's group-kind population to `counts` (Fig 11e).
  void CountGroupKinds(std::array<uint64_t, 5>& counts) const;

  int NumActiveGroups() const;
  const RadixGroup* GroupAt(int k) const {
    return k < static_cast<int>(groups_.size()) ? &groups_[k] : nullptr;
  }
  const DecimalGroup& Decimal() const { return decimal_; }

 private:
  static constexpr int kDecimalGroupId = -1;

  BiasParts Split(double bias) const { return SplitBias(bias, config_->lambda); }
  void EnsureGroup(int k);
  void RebuildInterGroupAlias();
  void ReclassifyGroups(std::span<const graph::Edge> adj);
  // Members of group k recovered by scanning the adjacency (used when
  // converting away from dense, which stores no members).
  std::vector<uint32_t> ScanMembers(std::span<const graph::Edge> adj, int k) const;

  const BingoConfig* config_ = nullptr;
  std::vector<RadixGroup> groups_;  // index = radix position k
  DecimalGroup decimal_;
  sampling::AliasTable alias_;
  std::vector<int8_t> alias_groups_;  // alias slot -> radix k, or -1 = decimal
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_VERTEX_SAMPLER_H_
