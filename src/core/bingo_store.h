// BingoStore: the whole-graph Bingo engine (§3 workflow).
//
// Owns the dynamic graph and one VertexSampler per vertex, and exposes the
// two functionalities of Fig 3: sampling (inter-group -> intra-group) and
// graph updates (streaming, one edge at a time, or batched with a single
// rebuild per touched vertex, §5.2).

#ifndef BINGO_SRC_CORE_BINGO_STORE_H_
#define BINGO_SRC_CORE_BINGO_STORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/store_types.h"
#include "src/core/vertex_sampler.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/types.h"
#include "src/util/prefetch.h"
#include "src/util/thread_pool.h"

namespace bingo::core {

class BingoStore {
 public:
  // Takes ownership of the graph and builds every vertex's sampling space.
  // `pool` parallelizes the build (nullptr = sequential).
  explicit BingoStore(graph::DynamicGraph graph, BingoConfig config = {},
                      util::ThreadPool* pool = nullptr);

  BingoStore(const BingoStore&) = delete;
  BingoStore& operator=(const BingoStore&) = delete;

  const graph::DynamicGraph& Graph() const { return graph_; }
  const BingoConfig& Config() const { return config_; }
  uint32_t LogicalEpoch() const { return config_.logical_epoch; }

  // --- uniform store surface (src/walk/store.h concept) --------------------

  graph::VertexId NumVertices() const { return graph_.NumVertices(); }
  uint64_t NumEdges() const { return graph_.NumEdges(); }
  // Vertex ids at or past NumVertices() read as isolated: update batches
  // grow the vertex set lazily (see ApplyBatch), and in the sharded service
  // a new vertex's home shard may not have grown yet when a walk reaches
  // it — an id with no materialized slot has, by definition, no out-edges.
  bool HasEdge(graph::VertexId src, graph::VertexId dst) const {
    return src < NumVertices() && graph_.HasEdge(src, dst);
  }
  std::span<const graph::Edge> NeighborsOf(graph::VertexId v) const {
    return v < NumVertices() ? graph_.Neighbors(v)
                             : std::span<const graph::Edge>{};
  }

  // --- sampling -----------------------------------------------------------

  // One O(1) biased neighbor draw; kInvalidVertex if v has no out-weight.
  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const {
    if (v >= samplers_.size()) {
      return graph::kInvalidVertex;  // unmaterialized vertex: no out-edges
    }
    const uint32_t idx = samplers_[v].SampleIndex(graph_.Neighbors(v), rng);
    return idx == VertexSampler::kNoNeighbor ? graph::kInvalidVertex
                                             : graph_.NeighborAt(v, idx).dst;
  }

  uint32_t SampleNeighborIndex(graph::VertexId v, util::Rng& rng) const {
    return v < samplers_.size()
               ? samplers_[v].SampleIndex(graph_.Neighbors(v), rng)
               : VertexSampler::kNoNeighbor;
  }

  // Batched draws at one vertex: out[i] is exactly what
  // SampleNeighbor(v, *rngs[i]) would return (bit-identity contract of
  // VertexSampler::SampleIndexBatch). kNoNeighbor and kInvalidVertex share
  // the same bit pattern, so the no-out-weight case passes through.
  void SampleNeighborBatch(graph::VertexId v, util::Rng* const* rngs,
                           std::size_t n, graph::VertexId* out) const {
    if (v >= samplers_.size()) {
      std::fill(out, out + n, graph::kInvalidVertex);
      return;
    }
    const std::span<const graph::Edge> adj = graph_.Neighbors(v);
    samplers_[v].SampleIndexBatch(adj, rngs, n, out);
    static_assert(VertexSampler::kNoNeighbor == graph::kInvalidVertex);
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] != VertexSampler::kNoNeighbor) {
        out[i] = adj[out[i]].dst;
      }
    }
  }

  // Advisory prefetch of v's sampler state and adjacency head, so a fused
  // walk pass can hide the pointer chase of the next step's draw.
  void PrefetchVertex(graph::VertexId v) const {
    if (v >= samplers_.size()) {
      return;
    }
    util::PrefetchRead(&samplers_[v]);
    graph_.PrefetchVertex(v);
  }

  // --- streaming updates (§4.2) -------------------------------------------

  // Legacy form: counter-stamped, no pipeline composition (static-bias
  // workloads and the pre-temporal tests).
  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias);

  // Update-path form: the edge is stamped `timestamp` and its stored bias
  // is the pipeline composition static × decay × gate at the store's
  // current logical epoch.
  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias,
                       uint32_t timestamp);

  // Deletes the earliest surviving copy of (src -> dst); false if absent.
  bool StreamingDelete(graph::VertexId src, graph::VertexId dst);

  // Overwrites the bias of the earliest surviving copy of (src -> dst).
  // O(K): the edge keeps its neighbor index; only its group memberships
  // change (§4.2 "updating the edge bias ... supported straightforwardly").
  bool UpdateBias(graph::VertexId src, graph::VertexId dst, double bias);

  // Removes every out-edge of `v` in one batched operation (the out-half
  // of the paper's vertex-deletion event; in-edges are per-source events).
  // Returns the number of removed edges.
  uint32_t DeleteVertexOutEdges(graph::VertexId v);

  // Grows the vertex set; new vertices start isolated.
  void AddVertices(graph::VertexId count);

  // Applies a mixed stream one update at a time (the Fig 12 baseline).
  BatchResult ApplyUpdatesStreaming(const graph::UpdateList& updates);

  // Advances the logical epoch (temporal decay). Every stored bias picks up
  // decay^(age delta) and its vertex re-buckets — the "effective bias can
  // change without an insert/delete" half of the pipeline contract. No-op
  // when new_epoch <= current. Normally reached via a kAdvanceTime update
  // inside ApplyBatch so journaling/recovery see an ordinary batch.
  void AdvanceEpoch(uint32_t new_epoch, util::ThreadPool* pool = nullptr);

  // --- batched updates (§5.2) ---------------------------------------------

  // Reorders by vertex, then runs insert -> delete -> rebuild per vertex in
  // parallel; the inter-group space of each touched vertex is rebuilt once.
  BatchResult ApplyBatch(const graph::UpdateList& updates,
                         util::ThreadPool* pool = nullptr);

  // --- introspection --------------------------------------------------------

  const VertexSampler& SamplerAt(graph::VertexId v) const { return samplers_[v]; }

  StoreMemoryStats MemoryStats() const;
  std::size_t MemoryBytes() const { return MemoryStats().TotalBytes(); }

  // Aggregated group-kind population (Fig 11e).
  std::array<uint64_t, 5> CountGroupKinds() const;

  ConversionStats& Conversions() { return conversion_stats_; }

  // Audits every vertex; returns the first inconsistency or empty.
  std::string CheckInvariants() const;

 private:
  void ApplyVertexBatch(graph::VertexId v, const graph::UpdateList& updates,
                        std::span<const uint32_t> update_indices,
                        BatchResult& result);

  BingoConfig config_;  // owned copy; conversion_stats points into this object
  ConversionStats conversion_stats_;
  graph::DynamicGraph graph_;
  std::vector<VertexSampler> samplers_;
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_BINGO_STORE_H_
