#include "src/core/snapshot.h"

#include <algorithm>
#include <bit>
#include <fstream>

#include "src/graph/io.h"
#include "src/util/checksum.h"
#include "src/util/fileio.h"
#include "src/util/serial.h"

namespace bingo::core {

namespace {

using util::AppendPod;
using util::ReadPod;

constexpr uint64_t kSnapshotMagic = 0x42494e474f534e50ULL;  // "BINGOSNP"
// v3 adds the logical epoch to the header and the timestamp to each edge
// record; v2 files (no temporal state) still load with epoch/timestamps 0.
constexpr uint32_t kSnapshotVersion = 3;
// magic, version, reserved, fingerprint, vertices, edges, wal_seq, crc
constexpr std::size_t kSnapshotHeaderBytesV2 = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 4;
// ... plus logical_epoch u64 before the crc
constexpr std::size_t kSnapshotHeaderBytesV3 = kSnapshotHeaderBytesV2 + 8;

// v2 edge record: {src u32, dst u32, bias f64} — the pre-timestamp
// WeightedEdge layout, serialized raw. The in-memory struct has grown past
// it, so v2 decoding goes through this packed mirror.
struct PackedEdgeV2 {
  graph::VertexId src;
  graph::VertexId dst;
  double bias;
};
static_assert(sizeof(PackedEdgeV2) == 16,
              "v2 record layout must stay 16 bytes");
// v3 edge record: {src u32, dst u32, timestamp u32, bias f64}, packed
// field-wise to 20 bytes (the in-memory struct carries padding).
constexpr std::size_t kEdgeRecordBytesV3 = 4 + 4 + 4 + 8;

}  // namespace

uint64_t ConfigFingerprint(const BingoConfig& config) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(config.adaptive.adaptive ? 1 : 0);
  mix(std::bit_cast<uint64_t>(config.adaptive.alpha_percent));
  mix(std::bit_cast<uint64_t>(config.adaptive.beta_percent));
  mix(std::bit_cast<uint64_t>(config.lambda));
  mix(static_cast<uint64_t>(config.decimal_policy));
  // The bias pipeline's static parameters shape every stored bias; the
  // logical epoch is mutable state (snapshot header), deliberately absent.
  mix(PipelineFingerprint(config.pipeline));
  return h;
}

graph::WeightedEdgeList CanonicalEdgeList(const graph::DynamicGraph& g) {
  graph::WeightedEdgeList edges;
  edges.reserve(g.NumEdges());
  for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    // Emit in timestamp order: the adjacency array's index order is not
    // timestamp order after swap-with-tail deletions, and the duplicate-
    // edge deletion rule keys on per-vertex insertion order.
    std::vector<const graph::Edge*> ordered;
    ordered.reserve(g.Degree(v));
    for (const graph::Edge& e : g.Neighbors(v)) {
      ordered.push_back(&e);
    }
    // Stable: epoch-stamped duplicates can share a timestamp, and ties must
    // keep the adjacency order (the same (timestamp, index) order the
    // duplicate-deletion rule consults).
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const graph::Edge* a, const graph::Edge* b) {
                       return a->timestamp < b->timestamp;
                     });
    for (const graph::Edge* e : ordered) {
      edges.push_back(graph::WeightedEdge{v, e->dst, e->bias, e->timestamp});
    }
  }
  return edges;
}

bool SaveGraphSnapshot(const graph::DynamicGraph& g, const BingoConfig& config,
                       const std::string& path, uint64_t wal_seq,
                       uint64_t* bytes_written) {
  const graph::WeightedEdgeList edges = CanonicalEdgeList(g);

  util::AtomicFileWriter writer(path);
  if (!writer.ok()) {
    return false;
  }
  std::string header;
  AppendPod(header, kSnapshotMagic);
  AppendPod(header, kSnapshotVersion);
  AppendPod(header, uint32_t{0});  // reserved
  AppendPod(header, ConfigFingerprint(config));
  AppendPod(header, static_cast<uint64_t>(g.NumVertices()));
  AppendPod(header, static_cast<uint64_t>(edges.size()));
  AppendPod(header, wal_seq);
  AppendPod(header, static_cast<uint64_t>(config.logical_epoch));
  AppendPod(header, util::Crc32c(header.data(), header.size()));
  if (!writer.Write(header.data(), header.size())) {
    return false;
  }
  // Packed 20-byte records, serialized field-wise in 1 MiB chunks with a
  // streaming CRC (the in-memory struct's padding never reaches disk).
  uint32_t payload_crc = 0;
  std::string chunk;
  for (const graph::WeightedEdge& e : edges) {
    AppendPod(chunk, e.src);
    AppendPod(chunk, e.dst);
    AppendPod(chunk, e.timestamp);
    AppendPod(chunk, e.bias);
    if (chunk.size() >= (1u << 20)) {
      payload_crc = util::Crc32c(chunk.data(), chunk.size(), payload_crc);
      if (!writer.Write(chunk.data(), chunk.size())) {
        return false;
      }
      chunk.clear();
    }
  }
  if (!chunk.empty()) {
    payload_crc = util::Crc32c(chunk.data(), chunk.size(), payload_crc);
    if (!writer.Write(chunk.data(), chunk.size())) {
      return false;
    }
  }
  if (!writer.Write(&payload_crc, sizeof(payload_crc))) {
    return false;
  }
  if (!writer.Commit()) {
    return false;
  }
  if (bytes_written != nullptr) {
    *bytes_written = writer.bytes_written();
  }
  return true;
}

bool SaveSnapshot(const BingoStore& store, const std::string& path,
                  uint64_t wal_seq) {
  return SaveGraphSnapshot(store.Graph(), store.Config(), path, wal_seq);
}

bool LoadSnapshotEdges(const std::string& path, graph::WeightedEdgeList& edges,
                       SnapshotInfo* info) {
  // Stream the edge section straight into the vector (this is the cold-
  // recovery path; no second whole-file buffer).
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  std::string header(static_cast<std::size_t>(std::min<uint64_t>(
                         file_size, kSnapshotHeaderBytesV3)),
                     '\0');
  in.read(header.data(), static_cast<std::streamsize>(header.size()));
  if (!in) {
    return false;
  }
  SnapshotInfo parsed;
  std::size_t offset = 0;
  uint64_t magic = 0;
  if (!ReadPod(header, offset, magic)) {
    return false;
  }
  if (magic != kSnapshotMagic) {
    // Legacy snapshots were plain binary edge lists (graph/io.h format).
    if (!graph::LoadWeightedEdgesBinary(path, edges)) {
      return false;
    }
    parsed.version = 1;
    parsed.num_vertices = graph::ImpliedVertexCount(edges);
    parsed.num_edges = edges.size();
    if (info != nullptr) {
      *info = parsed;
    }
    return true;
  }

  uint32_t reserved = 0;
  uint64_t num_vertices = 0;
  uint32_t header_crc = 0;
  if (!ReadPod(header, offset, parsed.version) ||
      !ReadPod(header, offset, reserved) ||
      !ReadPod(header, offset, parsed.config_fingerprint) ||
      !ReadPod(header, offset, num_vertices) ||
      !ReadPod(header, offset, parsed.num_edges) ||
      !ReadPod(header, offset, parsed.wal_seq)) {
    return false;
  }
  if (parsed.version >= 3 && !ReadPod(header, offset, parsed.logical_epoch)) {
    return false;
  }
  const std::size_t crc_span = offset;
  if (!ReadPod(header, offset, header_crc) || parsed.version < 2 ||
      parsed.version > kSnapshotVersion ||
      header_crc != util::Crc32c(header.data(), crc_span) ||
      num_vertices > graph::kInvalidVertex) {
    return false;
  }
  parsed.num_vertices = static_cast<graph::VertexId>(num_vertices);

  // Untrusted count: bound it by the bytes actually present before
  // allocating anything.
  const std::size_t payload_offset = parsed.version >= 3
                                         ? kSnapshotHeaderBytesV3
                                         : kSnapshotHeaderBytesV2;
  const std::size_t record_bytes =
      parsed.version >= 3 ? kEdgeRecordBytesV3 : sizeof(PackedEdgeV2);
  if (file_size < payload_offset) {
    return false;
  }
  const uint64_t remaining = file_size - payload_offset;
  if (parsed.num_edges > remaining / record_bytes) {
    return false;
  }
  const std::size_t payload_bytes =
      static_cast<std::size_t>(parsed.num_edges) * record_bytes;
  std::string payload(payload_bytes, '\0');
  in.seekg(static_cast<std::streamoff>(payload_offset));
  in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  uint32_t payload_crc = 0;
  in.read(reinterpret_cast<char*>(&payload_crc), sizeof(payload_crc));
  if (!in || payload_crc != util::Crc32c(payload.data(), payload.size())) {
    return false;
  }
  // Decode the packed records field-wise (the CRC above covers the packed
  // bytes; the in-memory struct's padding never touches disk).
  edges.clear();
  edges.reserve(parsed.num_edges);
  std::size_t pos = 0;
  for (uint64_t i = 0; i < parsed.num_edges; ++i) {
    graph::WeightedEdge e{};
    ReadPod(payload, pos, e.src);
    ReadPod(payload, pos, e.dst);
    if (parsed.version >= 3) {
      ReadPod(payload, pos, e.timestamp);
    }
    ReadPod(payload, pos, e.bias);
    edges.push_back(e);
  }
  if (info != nullptr) {
    *info = parsed;
  }
  return true;
}

bool StreamSnapshotEdges(
    const std::string& path, SnapshotInfo* info,
    const std::function<bool(const graph::WeightedEdge&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (file_size < kSnapshotHeaderBytesV2) {
    return false;
  }
  in.seekg(0, std::ios::beg);
  std::string header(static_cast<std::size_t>(std::min<uint64_t>(
                         file_size, kSnapshotHeaderBytesV3)),
                     '\0');
  in.read(header.data(), static_cast<std::streamsize>(header.size()));
  if (!in) {
    return false;
  }
  SnapshotInfo parsed;
  std::size_t offset = 0;
  uint64_t magic = 0;
  uint32_t reserved = 0;
  uint64_t num_vertices = 0;
  uint32_t header_crc = 0;
  if (!ReadPod(header, offset, magic) || magic != kSnapshotMagic ||
      !ReadPod(header, offset, parsed.version) ||
      !ReadPod(header, offset, reserved) ||
      !ReadPod(header, offset, parsed.config_fingerprint) ||
      !ReadPod(header, offset, num_vertices) ||
      !ReadPod(header, offset, parsed.num_edges) ||
      !ReadPod(header, offset, parsed.wal_seq)) {
    return false;  // legacy v1 files (no magic) are not streamable
  }
  if (parsed.version >= 3 && !ReadPod(header, offset, parsed.logical_epoch)) {
    return false;
  }
  const std::size_t crc_span = offset;
  if (!ReadPod(header, offset, header_crc) || parsed.version < 2 ||
      parsed.version > kSnapshotVersion ||
      header_crc != util::Crc32c(header.data(), crc_span) ||
      num_vertices > graph::kInvalidVertex) {
    return false;
  }
  parsed.num_vertices = static_cast<graph::VertexId>(num_vertices);

  const std::size_t payload_offset = parsed.version >= 3
                                         ? kSnapshotHeaderBytesV3
                                         : kSnapshotHeaderBytesV2;
  const std::size_t record_bytes =
      parsed.version >= 3 ? kEdgeRecordBytesV3 : sizeof(PackedEdgeV2);
  if (file_size < payload_offset) {
    return false;
  }
  if (parsed.num_edges > (file_size - payload_offset) / record_bytes) {
    return false;
  }
  if (info != nullptr) {
    *info = parsed;  // callers get counts up front for pre-sizing
  }

  // Stream whole records in ~1 MiB chunks with a running CRC; the stored
  // payload CRC is checked after the final chunk.
  in.seekg(static_cast<std::streamoff>(payload_offset));
  const std::size_t records_per_chunk =
      std::max<std::size_t>(1, (1u << 20) / record_bytes);
  std::string chunk;
  uint32_t payload_crc = 0;
  uint64_t remaining = parsed.num_edges;
  while (remaining > 0) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<uint64_t>(remaining, records_per_chunk));
    chunk.resize(take * record_bytes);
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    if (!in) {
      return false;
    }
    payload_crc = util::Crc32c(chunk.data(), chunk.size(), payload_crc);
    std::size_t pos = 0;
    for (std::size_t i = 0; i < take; ++i) {
      graph::WeightedEdge e{};
      ReadPod(chunk, pos, e.src);
      ReadPod(chunk, pos, e.dst);
      if (parsed.version >= 3) {
        ReadPod(chunk, pos, e.timestamp);
      }
      ReadPod(chunk, pos, e.bias);
      if (!fn(e)) {
        return false;
      }
    }
    remaining -= take;
  }
  uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  return static_cast<bool>(in) && stored_crc == payload_crc;
}

std::unique_ptr<BingoStore> LoadSnapshot(const std::string& path,
                                         BingoConfig config,
                                         graph::VertexId num_vertices,
                                         util::ThreadPool* pool) {
  graph::WeightedEdgeList edges;
  SnapshotInfo info;
  if (!LoadSnapshotEdges(path, edges, &info)) {
    return nullptr;
  }
  if (info.version >= 2 &&
      info.config_fingerprint != ConfigFingerprint(config)) {
    return nullptr;  // different config => different sampling structures
  }
  // Temporal state rides in the header, not the fingerprint: resume the
  // logical clock where the snapshot left it so decay composition matches.
  config.logical_epoch = static_cast<uint32_t>(info.logical_epoch);
  const graph::VertexId n = std::max(
      {num_vertices, info.num_vertices, graph::ImpliedVertexCount(edges)});
  return std::make_unique<BingoStore>(graph::DynamicGraph::FromEdges(n, edges),
                                      config, pool);
}

}  // namespace bingo::core
