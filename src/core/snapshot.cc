#include "src/core/snapshot.h"

#include <algorithm>

#include "src/graph/io.h"

namespace bingo::core {

bool SaveSnapshot(const BingoStore& store, const std::string& path) {
  const graph::DynamicGraph& g = store.Graph();
  graph::WeightedEdgeList edges;
  edges.reserve(g.NumEdges());
  for (graph::VertexId v = 0; v < g.NumVertices(); ++v) {
    // Emit in timestamp order so duplicate-edge deletion order survives the
    // round trip (the adjacency array's index order is not timestamp order
    // after swap-with-tail deletions).
    std::vector<const graph::Edge*> ordered;
    ordered.reserve(g.Degree(v));
    for (const graph::Edge& e : g.Neighbors(v)) {
      ordered.push_back(&e);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const graph::Edge* a, const graph::Edge* b) {
                return a->timestamp < b->timestamp;
              });
    for (const graph::Edge* e : ordered) {
      edges.push_back(graph::WeightedEdge{v, e->dst, e->bias});
    }
  }
  return graph::SaveWeightedEdgesBinary(path, edges);
}

std::unique_ptr<BingoStore> LoadSnapshot(const std::string& path,
                                         BingoConfig config,
                                         graph::VertexId num_vertices,
                                         util::ThreadPool* pool) {
  graph::WeightedEdgeList edges;
  if (!graph::LoadWeightedEdgesBinary(path, edges)) {
    return nullptr;
  }
  const graph::VertexId n =
      std::max(num_vertices, graph::ImpliedVertexCount(edges));
  return std::make_unique<BingoStore>(graph::DynamicGraph::FromEdges(n, edges),
                                      config, pool);
}

}  // namespace bingo::core
