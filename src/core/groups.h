// Radix-group storage: the intra-group neighbor index list, the inverted
// index (§4.2, Fig 6), and the adaptive group representations (§5.1, Eq 9).
//
// A group stores *neighbor indices* (positions in the source vertex's
// adjacency array), never neighbor IDs, so that a group member locates its
// edge in O(1). The inverted index maps a neighbor index to its position in
// the member list so that deletion locates the entry in O(1) and removes it
// with swap-with-tail, keeping the member list compact for O(1) unbiased
// sampling.
//
// Four representations (Eq 9, alpha = 40, beta = 10 by default):
//   Dense       |G|/d > alpha%   -> store only the count; sample by
//                                   rejection on the adjacency array
//   One-element |G| == 1         -> store the single neighbor index
//   Sparse      |G|/d < beta%    -> compact member list + O(|G|) hash
//                                   inverted index (paper's compacted
//                                   neighbor-list design; see DESIGN.md §4.3)
//   Regular     otherwise        -> member list + full O(d) inverted index

#ifndef BINGO_SRC_CORE_GROUPS_H_
#define BINGO_SRC_CORE_GROUPS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace bingo::core {

enum class GroupKind : uint8_t { kEmpty, kDense, kOneElement, kSparse, kRegular };

const char* ToString(GroupKind kind);

struct AdaptiveConfig {
  bool adaptive = true;      // false = BS baseline: every group is regular
  double alpha_percent = 40.0;
  double beta_percent = 10.0;
};

// Eq 9, evaluated in the paper's order (dense wins over one-element when
// both match).
GroupKind ClassifyGroup(uint64_t count, uint64_t degree, const AdaptiveConfig& cfg);

// Open-addressing map from neighbor index to member-list position; the
// sparse-group inverted index. Linear probing with tombstones.
class IndexMap {
 public:
  void Insert(uint32_t key, uint32_t value);
  std::optional<uint32_t> Find(uint32_t key) const;
  bool Erase(uint32_t key);
  bool Update(uint32_t key, uint32_t value);
  void Clear();
  uint32_t Size() const { return live_; }
  std::size_t MemoryBytes() const { return slots_.capacity() * sizeof(uint64_t); }

 private:
  static constexpr uint64_t kEmptySlot = ~uint64_t{0};
  static constexpr uint64_t kTombstoneSlot = ~uint64_t{0} - 1;

  void Grow(std::size_t min_live);
  std::size_t Mask() const { return slots_.size() - 1; }

  std::vector<uint64_t> slots_;  // key<<32 | value
  uint32_t live_ = 0;
  uint32_t used_ = 0;
};

// One radix group of one vertex, in whichever representation its
// classification currently demands.
class RadixGroup {
 public:
  static constexpr uint32_t kNoPosition = 0xFFFFFFFFu;

  GroupKind Kind() const { return kind_; }
  uint32_t Count() const { return count_; }
  bool Empty() const { return count_ == 0; }

  // Adds neighbor index `idx`. If the current representation cannot absorb
  // the element (empty, or full one-element), it escalates to the smallest
  // representation that can; a later Reclassify() pass settles the final
  // kind. `degree_hint` sizes the regular inverted index.
  void Insert(uint32_t idx, uint32_t degree_hint);

  // Removes neighbor index `idx` (must be present; for dense groups this
  // only decrements the count). Swap-with-tail keeps members compact.
  void Remove(uint32_t idx);

  // Re-points member `from` to index `to` after an adjacency swap-with-tail
  // renamed the neighbor index. No-op for dense groups.
  void Rename(uint32_t from, uint32_t to);

  // Two-phase parallel delete-and-swap (Fig 10b): removes every index in
  // `idxs` (each must be a member; dense groups only adjust the count).
  void BatchRemove(std::span<const uint32_t> idxs);

  // Uniform member pick for one-element/sparse/regular groups. Dense groups
  // have no member list; the vertex sampler handles them by rejection on
  // the adjacency array.
  uint32_t PickUniform(util::Rng& rng) const;

  // Rebuilds as `target` from the full member list. `degree_hint` sizes the
  // regular inverted index.
  void RebuildAs(GroupKind target, std::span<const uint32_t> members,
                 uint32_t degree_hint);

  // Appends all members to `out`. Not valid for dense groups (which do not
  // store members).
  void CollectMembers(std::vector<uint32_t>& out) const;

  // Membership test (not valid for dense groups).
  bool Contains(uint32_t idx) const;

  void Clear();

  std::size_t MemoryBytes() const;

  // Structural audit: inverted index consistent with members, no
  // duplicates, count matches. Returns an error description or empty.
  std::string CheckInvariants() const;

 private:
  void EnsureInvSize(uint32_t min_size);
  void RemoveAtPosition(uint32_t pos);

  GroupKind kind_ = GroupKind::kEmpty;
  uint32_t count_ = 0;
  uint32_t single_ = kNoPosition;       // one-element storage
  std::vector<uint32_t> members_;       // sparse + regular
  std::vector<uint32_t> inv_;           // regular: neighbor index -> position
  IndexMap map_;                        // sparse: neighbor index -> position
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_GROUPS_H_
