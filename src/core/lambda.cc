#include "src/core/lambda.h"

#include <algorithm>

#include "src/core/radix.h"

namespace bingo::core {

double DecimalShare(std::span<const double> biases, double lambda) {
  // Exact fixed-point accounting, mirroring what the decimal group stores.
  unsigned __int128 integer_mass = 0;  // units of 2^-32
  unsigned __int128 decimal_mass = 0;
  for (double w : biases) {
    const BiasParts parts = SplitBias(w, lambda);
    integer_mass += static_cast<unsigned __int128>(parts.int_bits) << kDecimalBits;
    decimal_mass += parts.dec_fixed;
  }
  const long double total =
      static_cast<long double>(integer_mass) + static_cast<long double>(decimal_mass);
  if (total <= 0) {
    return 0.0;
  }
  return static_cast<double>(static_cast<long double>(decimal_mass) / total);
}

LambdaChoice SuggestLambda(std::span<const double> biases, double target_share) {
  double max_bias = 0.0;
  for (double w : biases) {
    max_bias = std::max(max_bias, w);
  }
  LambdaChoice best;
  best.lambda = 1.0;
  best.decimal_share = DecimalShare(biases, 1.0);
  double lambda = 1.0;
  while (best.decimal_share >= target_share &&
         max_bias * lambda * 2.0 < kMaxScaledBias) {
    lambda *= 2.0;
    const double share = DecimalShare(biases, lambda);
    if (share < best.decimal_share) {
      best.lambda = lambda;
      best.decimal_share = share;
    }
  }
  return best;
}

}  // namespace bingo::core
