#include "src/core/bingo_store.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "src/core/batch.h"

namespace bingo::core {

BingoStore::BingoStore(graph::DynamicGraph graph, BingoConfig config,
                       util::ThreadPool* pool)
    : config_(config), graph_(std::move(graph)) {
  config_.conversion_stats = &conversion_stats_;
  samplers_.resize(graph_.NumVertices());
  const auto build_range = [this](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      samplers_[v].SetConfig(&config_);
      samplers_[v].Build(graph_.Neighbors(static_cast<graph::VertexId>(v)));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, samplers_.size(), build_range, 1024);
  } else {
    build_range(0, samplers_.size());
  }
}

void BingoStore::StreamingInsert(graph::VertexId src, graph::VertexId dst,
                                 double bias) {
  // An insert may reference vertices the store has never seen; grow the
  // vertex set so both endpoints are materialized (walks sample dst next).
  const graph::VertexId needed = std::max(src, dst);
  if (needed >= NumVertices()) {
    AddVertices(needed + 1 - NumVertices());
  }
  const uint32_t idx = graph_.Insert(src, dst, bias);
  VertexSampler& sampler = samplers_[src];
  sampler.InsertEdge(graph_.Neighbors(src), idx);
  sampler.FinishUpdate(graph_.Neighbors(src));
}

void BingoStore::StreamingInsert(graph::VertexId src, graph::VertexId dst,
                                 double bias, uint32_t timestamp) {
  const graph::VertexId needed = std::max(src, dst);
  if (needed >= NumVertices()) {
    AddVertices(needed + 1 - NumVertices());
  }
  const double effective = config_.pipeline.Compose(src, dst, bias, timestamp,
                                                    config_.logical_epoch);
  const uint32_t idx = graph_.Insert(src, dst, effective, timestamp);
  VertexSampler& sampler = samplers_[src];
  sampler.InsertEdge(graph_.Neighbors(src), idx);
  sampler.FinishUpdate(graph_.Neighbors(src));
}

bool BingoStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  if (src >= NumVertices()) {
    return false;  // unmaterialized vertex owns no edges
  }
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  VertexSampler& sampler = samplers_[src];
  sampler.RemoveEdge(graph_.Neighbors(src), *idx);
  const auto result = graph_.SwapRemove(src, *idx);
  if (result.moved) {
    sampler.RenameIndex(result.moved_edge.bias, result.moved_from,
                        result.moved_to);
  }
  sampler.FinishUpdate(graph_.Neighbors(src));
  return true;
}

bool BingoStore::UpdateBias(graph::VertexId src, graph::VertexId dst,
                            double bias) {
  if (src >= NumVertices()) {
    return false;
  }
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  VertexSampler& sampler = samplers_[src];
  // Withdraw the old sub-biases, rewrite the stored bias in place (the
  // neighbor index is unchanged, so no swap or rename is needed), then
  // re-split under the new value.
  sampler.RemoveEdge(graph_.Neighbors(src), *idx);
  graph_.SetBias(src, *idx, bias);
  sampler.InsertEdge(graph_.Neighbors(src), *idx);
  sampler.FinishUpdate(graph_.Neighbors(src));
  return true;
}

uint32_t BingoStore::DeleteVertexOutEdges(graph::VertexId v) {
  if (v >= NumVertices()) {
    return 0;
  }
  const uint32_t degree = graph_.Degree(v);
  if (degree == 0) {
    return 0;
  }
  std::vector<uint32_t> all(degree);
  for (uint32_t i = 0; i < degree; ++i) {
    all[i] = i;
  }
  VertexSampler& sampler = samplers_[v];
  sampler.RemoveEdgesBatch(graph_.Neighbors(v), all);
  graph_.BatchSwapRemove(v, all);  // removes everything: no moves result
  sampler.FinishUpdate(graph_.Neighbors(v));
  return degree;
}

void BingoStore::AddVertices(graph::VertexId count) {
  graph_.AddVertices(count);
  samplers_.resize(graph_.NumVertices());
  for (std::size_t v = samplers_.size() - count; v < samplers_.size(); ++v) {
    samplers_[v].SetConfig(&config_);
    samplers_[v].Build(graph_.Neighbors(static_cast<graph::VertexId>(v)));
  }
}

BatchResult BingoStore::ApplyUpdatesStreaming(const graph::UpdateList& updates) {
  BatchResult result;
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      AdvanceEpoch(u.timestamp);
    } else if (u.kind == graph::Update::Kind::kInsert) {
      StreamingInsert(u.src, u.dst, u.bias, u.timestamp);
      ++result.inserted;
    } else if (StreamingDelete(u.src, u.dst)) {
      ++result.deleted;
    } else {
      ++result.skipped_deletes;
    }
  }
  return result;
}

void BingoStore::AdvanceEpoch(uint32_t new_epoch, util::ThreadPool* pool) {
  const uint32_t old_epoch = config_.logical_epoch;
  if (new_epoch <= old_epoch) {
    return;  // logical time is monotone; replays of old ticks are no-ops
  }
  config_.logical_epoch = new_epoch;
  if (!config_.pipeline.DecayActive()) {
    return;  // gate-only pipelines are age-independent
  }
  // Incremental rescale: each stored (already-composed) bias picks up
  // decay^(age delta), via the same remove/rewrite/re-split sequence as
  // UpdateBias so the radix groups re-bucket exactly once per edge, then
  // one FinishUpdate per touched vertex. The multiply sequence is a pure
  // function of (epochs, timestamps), so every replica and every WAL
  // replay produces bit-identical biases.
  const auto rescale_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t vi = lo; vi < hi; ++vi) {
      const graph::VertexId v = static_cast<graph::VertexId>(vi);
      const std::span<const graph::Edge> adj = graph_.Neighbors(v);
      VertexSampler& sampler = samplers_[v];
      bool touched = false;
      for (uint32_t i = 0; i < adj.size(); ++i) {
        const double factor = config_.pipeline.RescaleFactor(
            old_epoch, new_epoch, adj[i].timestamp);
        if (factor == 1.0) {
          continue;  // at the horizon floor (or future-stamped)
        }
        const double rescaled = adj[i].bias * factor;
        sampler.RemoveEdge(adj, i);
        graph_.SetBias(v, i, rescaled);
        sampler.InsertEdge(adj, i);
        touched = true;
      }
      if (touched) {
        sampler.FinishUpdate(adj);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, samplers_.size(), rescale_range, 1024);
  } else {
    rescale_range(0, samplers_.size());
  }
}

void BingoStore::ApplyVertexBatch(graph::VertexId v,
                                  const graph::UpdateList& updates,
                                  std::span<const uint32_t> update_indices,
                                  BatchResult& result) {
  VertexSampler& sampler = samplers_[v];

  // Fast path: a vertex with a single request degenerates to the streaming
  // op (one mutation + one rebuild), with none of the batch bookkeeping.
  if (update_indices.size() == 1) {
    const graph::Update& u = updates[update_indices[0]];
    if (u.kind == graph::Update::Kind::kInsert) {
      const uint32_t idx = graph_.Insert(
          v, u.dst,
          config_.pipeline.Compose(v, u.dst, u.bias, u.timestamp,
                                   config_.logical_epoch),
          u.timestamp);
      sampler.InsertEdge(graph_.Neighbors(v), idx);
      ++result.inserted;
    } else {
      const auto idx = graph_.FindEarliest(v, u.dst);
      if (!idx.has_value()) {
        ++result.skipped_deletes;
        sampler.FinishUpdate(graph_.Neighbors(v));
        return;
      }
      sampler.RemoveEdge(graph_.Neighbors(v), *idx);
      const auto removed = graph_.SwapRemove(v, *idx);
      if (removed.moved) {
        sampler.RenameIndex(removed.moved_edge.bias, removed.moved_from,
                            removed.moved_to);
      }
      ++result.deleted;
    }
    sampler.FinishUpdate(graph_.Neighbors(v));
    return;
  }

  // Step (i): insertions, appended in stream order (timestamps preserve the
  // duplicate-edge deletion rule).
  std::size_t num_deletes = 0;
  for (const uint32_t i : update_indices) {
    const graph::Update& u = updates[i];
    if (u.kind == graph::Update::Kind::kInsert) {
      const uint32_t idx = graph_.Insert(
          v, u.dst,
          config_.pipeline.Compose(v, u.dst, u.bias, u.timestamp,
                                   config_.logical_epoch),
          u.timestamp);
      sampler.InsertEdge(graph_.Neighbors(v), idx);
      ++result.inserted;
    } else {
      ++num_deletes;
    }
  }

  // Step (ii): deletions. Resolve each requested dst to the earliest
  // surviving unmarked copy, then remove all victims with the two-phase
  // delete-and-swap.
  if (num_deletes > 0) {
    // Per-distinct-dst candidate cursors (earliest-first order).
    std::vector<std::pair<graph::VertexId, std::pair<std::vector<uint32_t>, std::size_t>>>
        candidates;
    std::vector<uint32_t> marked;
    marked.reserve(num_deletes);
    for (const uint32_t i : update_indices) {
      const graph::Update& u = updates[i];
      if (u.kind != graph::Update::Kind::kDelete) {
        continue;
      }
      const graph::VertexId dst = u.dst;
      auto it = std::find_if(candidates.begin(), candidates.end(),
                             [dst](const auto& c) { return c.first == dst; });
      if (it == candidates.end()) {
        candidates.emplace_back(dst,
                                std::make_pair(graph_.CollectMatches(v, dst), 0u));
        it = candidates.end() - 1;
      }
      auto& [list, cursor] = it->second;
      if (cursor < list.size()) {
        marked.push_back(list[cursor++]);
        ++result.deleted;
      } else {
        ++result.skipped_deletes;
      }
    }
    if (!marked.empty()) {
      std::sort(marked.begin(), marked.end());
      sampler.RemoveEdgesBatch(graph_.Neighbors(v), marked);
      const auto moves = graph_.BatchSwapRemove(v, marked);
      for (const auto& move : moves) {
        sampler.RenameIndex(move.edge.bias, move.from, move.to);
      }
    }
  }

  // Step (iii): one rebuild — group reclassification plus a single
  // inter-group alias reconstruction.
  sampler.FinishUpdate(graph_.Neighbors(v));
}

BatchResult BingoStore::ApplyBatch(const graph::UpdateList& updates,
                                   util::ThreadPool* pool) {
  // Clock ticks apply FIRST: the remaining updates in this batch compose
  // their biases at the new epoch, matching the streaming path's semantics
  // whichever shard slice the batch arrives in.
  uint32_t advance_to = 0;
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      advance_to = std::max(advance_to, u.timestamp);
    }
  }
  if (advance_to != 0) {
    AdvanceEpoch(advance_to, pool);
  }
  // Grow the vertex set up front so every referenced id is materialized
  // before the parallel per-vertex phase touches samplers_. Replicas and
  // WAL replay apply identical batches, so growth is deterministic and
  // recovery-safe. Deletes grow too: harmless (the delete then skips), and
  // uniform growth keeps replica vertex counts comparable.
  graph::VertexId max_id = 0;
  bool any_edge_update = false;
  for (const graph::Update& u : updates) {
    if (u.kind == graph::Update::Kind::kAdvanceTime) {
      continue;  // carries no edge; src/dst are kInvalidVertex sentinels
    }
    max_id = std::max({max_id, u.src, u.dst});
    any_edge_update = true;
  }
  if (any_edge_update && max_id >= NumVertices()) {
    AddVertices(max_id + 1 - NumVertices());
  }
  const GroupedUpdates grouped = GroupUpdatesByVertex(updates);

  std::atomic<uint64_t> inserted{0};
  std::atomic<uint64_t> deleted{0};
  std::atomic<uint64_t> skipped{0};
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    BatchResult local;
    for (std::size_t i = lo; i < hi; ++i) {
      const GroupedUpdates::Range& r = grouped.ranges[i];
      ApplyVertexBatch(r.vertex, updates,
                       std::span<const uint32_t>(grouped.order)
                           .subspan(r.begin, r.end - r.begin),
                       local);
    }
    inserted.fetch_add(local.inserted, std::memory_order_relaxed);
    deleted.fetch_add(local.deleted, std::memory_order_relaxed);
    skipped.fetch_add(local.skipped_deletes, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(0, grouped.ranges.size(), run_range, 64);
  } else {
    run_range(0, grouped.ranges.size());
  }
  return BatchResult{inserted.load(), deleted.load(), skipped.load()};
}

StoreMemoryStats BingoStore::MemoryStats() const {
  StoreMemoryStats stats;
  stats.graph_bytes = graph_.MemoryBytes();
  stats.sampler_fixed_bytes = samplers_.capacity() * sizeof(VertexSampler);
  for (const VertexSampler& sampler : samplers_) {
    stats.sampler_dynamic_bytes += sampler.MemoryBreakdown().Total();
  }
  return stats;
}

std::array<uint64_t, 5> BingoStore::CountGroupKinds() const {
  std::array<uint64_t, 5> counts{};
  for (const VertexSampler& sampler : samplers_) {
    sampler.CountGroupKinds(counts);
  }
  return counts;
}

std::string BingoStore::CheckInvariants() const {
  uint64_t total_edges = 0;
  for (graph::VertexId v = 0; v < graph_.NumVertices(); ++v) {
    total_edges += graph_.Degree(v);
    const std::string err = samplers_[v].CheckInvariants(graph_.Neighbors(v));
    if (!err.empty()) {
      return "vertex " + std::to_string(v) + ": " + err;
    }
  }
  if (total_edges != graph_.NumEdges()) {
    return "graph edge count out of sync";
  }
  return {};
}

}  // namespace bingo::core
