#include "src/core/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "src/util/checksum.h"
#include "src/util/serial.h"

namespace bingo::core {

namespace {

using util::AppendPod;
using util::ReadPod;

constexpr uint64_t kFileMagic = 0x42494e474f57414cULL;  // "BINGOWAL"
// v1: per-update payload {kind u8, src u32, dst u32, bias f64}, kinds
//     insert/delete only.
// v2: adds a u32 timestamp per update (logical epoch) and the kAdvanceTime
//     kind. Replay reads both; new files are created at v2.
constexpr uint32_t kFileVersion = 2;
constexpr uint32_t kRecordMagic = 0x4c415257u;  // "WRAL"

// file header: magic u64, version u32, reserved u32, start_seq u64, crc u32
constexpr std::size_t kFileHeaderBytes = 8 + 4 + 4 + 8 + 4;
// record header: magic u32, payload_bytes u32, seq u64, payload_crc u32,
// header_crc u32
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8 + 4 + 4;
// payload: count u32, then one packed update per entry (size by version)
constexpr std::size_t kUpdateBytesV1 = 1 + 4 + 4 + 8;
constexpr std::size_t kUpdateBytesV2 = 1 + 4 + 4 + 4 + 8;

std::size_t UpdateBytes(uint32_t version) {
  return version >= 2 ? kUpdateBytesV2 : kUpdateBytesV1;
}

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string EncodeFileHeader(uint64_t start_seq) {
  std::string header;
  AppendPod(header, kFileMagic);
  AppendPod(header, kFileVersion);
  AppendPod(header, uint32_t{0});  // reserved
  AppendPod(header, start_seq);
  AppendPod(header, util::Crc32c(header.data(), header.size()));
  return header;
}

std::string EncodePayload(const graph::UpdateList& updates, uint32_t version) {
  std::string payload;
  payload.reserve(4 + updates.size() * UpdateBytes(version));
  AppendPod(payload, static_cast<uint32_t>(updates.size()));
  for (const graph::Update& u : updates) {
    AppendPod(payload, static_cast<uint8_t>(u.kind));
    AppendPod(payload, u.src);
    AppendPod(payload, u.dst);
    if (version >= 2) {
      AppendPod(payload, u.timestamp);
    }
    AppendPod(payload, u.bias);
  }
  return payload;
}

// False = corrupt payload (treated like a torn record: replay stops).
bool DecodePayload(std::string_view payload, uint32_t version,
                   graph::UpdateList& updates) {
  std::size_t offset = 0;
  uint32_t count = 0;
  if (!ReadPod(payload, offset, count) ||
      payload.size() - offset != count * UpdateBytes(version)) {
    return false;
  }
  const uint8_t max_kind =
      version >= 2 ? static_cast<uint8_t>(graph::Update::Kind::kAdvanceTime)
                   : static_cast<uint8_t>(graph::Update::Kind::kDelete);
  updates.clear();
  updates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind = 0;
    graph::Update u;
    ReadPod(payload, offset, kind);
    ReadPod(payload, offset, u.src);
    ReadPod(payload, offset, u.dst);
    if (version >= 2) {
      ReadPod(payload, offset, u.timestamp);
    }
    ReadPod(payload, offset, u.bias);
    if (kind > max_kind || !std::isfinite(u.bias)) {
      return false;
    }
    u.kind = static_cast<graph::Update::Kind>(kind);
    updates.push_back(u);
  }
  return true;
}

}  // namespace

WalReplayResult ReplayWal(
    const std::string& path, uint64_t after_seq,
    const std::function<void(uint64_t, const graph::UpdateList&)>& fn) {
  WalReplayResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return result;
  }
  result.opened = true;
  const std::string data = std::move(buffer).str();

  std::size_t offset = 0;
  {
    uint64_t magic = 0;
    uint32_t version = 0;
    uint32_t reserved = 0;
    uint32_t crc = 0;
    if (!ReadPod(data, offset, magic) || !ReadPod(data, offset, version) ||
        !ReadPod(data, offset, reserved) ||
        !ReadPod(data, offset, result.start_seq)) {
      result.header_torn = true;  // shorter than a header: crash mid-create
      result.start_seq = 0;
      return result;
    }
    const std::size_t crc_span = offset;
    if (!ReadPod(data, offset, crc)) {
      result.header_torn = true;
      result.start_seq = 0;
      return result;
    }
    if (magic != kFileMagic || version == 0 || version > kFileVersion ||
        crc != util::Crc32c(data.data(), crc_span)) {
      result.start_seq = 0;
      return result;  // full header present but invalid: corruption
    }
    result.version = version;
  }
  result.header_ok = true;
  result.last_seq = result.start_seq;
  result.valid_bytes = kFileHeaderBytes;

  graph::UpdateList batch;
  while (offset < data.size()) {
    const std::size_t record_start = offset;
    uint32_t magic = 0;
    uint32_t payload_bytes = 0;
    uint64_t seq = 0;
    uint32_t payload_crc = 0;
    uint32_t header_crc = 0;
    if (!ReadPod(data, offset, magic) || !ReadPod(data, offset, payload_bytes) ||
        !ReadPod(data, offset, seq) || !ReadPod(data, offset, payload_crc)) {
      result.truncated_tail = true;
      break;
    }
    const std::size_t crc_span = offset - record_start;
    if (!ReadPod(data, offset, header_crc) || magic != kRecordMagic ||
        header_crc != util::Crc32c(data.data() + record_start, crc_span) ||
        seq != result.last_seq + 1) {
      result.truncated_tail = true;
      break;
    }
    if (data.size() - offset < payload_bytes) {
      result.truncated_tail = true;
      break;
    }
    const std::string_view payload(data.data() + offset, payload_bytes);
    offset += payload_bytes;
    if (payload_crc != util::Crc32c(payload.data(), payload.size()) ||
        !DecodePayload(payload, result.version, batch)) {
      result.truncated_tail = true;
      break;
    }
    result.last_seq = seq;
    ++result.records;
    result.valid_bytes = offset;
    if (seq > after_seq) {
      ++result.records_replayed;
      result.updates_replayed += batch.size();
      if (fn) {
        fn(seq, batch);
      }
    }
  }
  return result;
}

WalWriter::WalWriter(int fd, uint32_t version, uint64_t start_seq,
                     uint64_t last_seq, uint64_t bytes, WalOptions options)
    : fd_(fd),
      version_(version),
      start_seq_(start_seq),
      last_seq_(last_seq),
      bytes_(bytes),
      options_(options) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::unique_ptr<WalWriter> WalWriter::Create(const std::string& path,
                                             uint64_t start_seq,
                                             WalOptions options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return nullptr;
  }
  const std::string header = EncodeFileHeader(start_seq);
  if (!WriteAll(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      fd, kFileVersion, start_seq, start_seq, header.size(), options));
}

std::unique_ptr<WalWriter> WalWriter::OpenForAppend(const std::string& path,
                                                    const WalReplayResult& replay,
                                                    WalOptions options) {
  if (!replay.header_ok) {
    return nullptr;
  }
  // Drop the torn tail so the next record lands on a clean boundary.
  if (::truncate(path.c_str(), static_cast<off_t>(replay.valid_bytes)) != 0) {
    return nullptr;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return nullptr;
  }
  // Appends keep the file's existing record encoding: readers size each
  // update by the header version, so mixing encodings would corrupt replay.
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, replay.version, replay.start_seq, replay.last_seq,
                    replay.valid_bytes, options));
}

bool WalWriter::Append(const graph::UpdateList& updates) {
  if (!ok_ || fd_ < 0) {
    return false;
  }
  if (updates.size() > (UINT32_MAX - 4) / UpdateBytes(version_)) {
    // The frame's payload length is 32-bit; a wrapped length could never
    // replay. Refuse (and poison) instead of journaling garbage.
    ok_ = false;
    return false;
  }
  if (version_ < 2) {
    for (const graph::Update& u : updates) {
      if (u.kind == graph::Update::Kind::kAdvanceTime || u.timestamp != 0) {
        // The v1 encoding cannot represent temporal updates; journaling a
        // lossy record would silently diverge recovery. Poison instead —
        // the next Checkpoint() compacts into a fresh v2 WAL.
        ok_ = false;
        return false;
      }
    }
  }
  const std::string payload = EncodePayload(updates, version_);
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  AppendPod(record, kRecordMagic);
  AppendPod(record, static_cast<uint32_t>(payload.size()));
  AppendPod(record, last_seq_ + 1);
  AppendPod(record, util::Crc32c(payload.data(), payload.size()));
  AppendPod(record, util::Crc32c(record.data(), record.size()));
  record += payload;
  if (!WriteAll(fd_, record.data(), record.size())) {
    ok_ = false;
    return false;
  }
  bytes_ += record.size();
  ++last_seq_;
  if (options_.fsync_on_commit && ::fsync(fd_) != 0) {
    ok_ = false;
    return false;
  }
  return true;
}

bool WalWriter::Sync() {
  if (!ok_ || fd_ < 0) {
    return false;
  }
  if (::fsync(fd_) != 0) {
    ok_ = false;
    return false;
  }
  return true;
}

}  // namespace bingo::core
