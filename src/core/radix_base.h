// Bingo with arbitrary radix bases (§9.2 supplement, Fig 17).
//
// With base B = 2^r, a bias decomposes into base-B digits: w = sum_j d_j B^j.
// Digit group j collects every neighbor whose digit j is nonzero, but unlike
// base 2 those members carry different sub-biases (d_j in 1..B-1), so each
// group is further split into B-1 *subgroups* of equal sub-bias; sampling is
// inter-group alias -> inter-subgroup alias -> uniform pick (Fig 17 c/d).
//
// Larger bases shrink the number of groups K (insertion/deletion touch
// fewer groups) at the price of wider per-group alias tables — the exact
// trade-off bench_ablation_radix measures. Base 2 (r = 1) degenerates to
// one single-subgroup per group, i.e. the main Bingo structure.
//
// This module supports integer biases (the ablation workload); the
// floating-point path lives in the main VertexSampler.

#ifndef BINGO_SRC_CORE_RADIX_BASE_H_
#define BINGO_SRC_CORE_RADIX_BASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/groups.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/types.h"
#include "src/sampling/alias_table.h"
#include "src/util/rng.h"

namespace bingo::core {

class RadixBaseVertexSampler {
 public:
  static constexpr uint32_t kNoNeighbor = 0xFFFFFFFFu;

  // `log2_base` = r, so the radix base is 2^r (r in [1, 16]).
  explicit RadixBaseVertexSampler(int log2_base = 1) : log2_base_(log2_base) {}

  void Build(std::span<const graph::Edge> adj);

  void InsertEdge(std::span<const graph::Edge> adj, uint32_t idx);
  void RemoveEdge(std::span<const graph::Edge> adj, uint32_t idx);
  void RenameIndex(double moved_bias, uint32_t from, uint32_t to);
  void FinishUpdate();

  uint32_t SampleIndex(util::Rng& rng) const;

  // Batched draws: out[i] is exactly what SampleIndex(*rngs[i]) would
  // return. Stage (i) resolves through the SIMD alias kernel; stages
  // (ii)/(iii) stay scalar per walker (subgroup tables are tiny). Each
  // walker consumes its own stream in SampleIndex's draw order, so the
  // result is bit-identical to n sequential SampleIndex calls.
  void SampleIndexBatch(util::Rng* const* rngs, std::size_t n,
                        uint32_t* out) const;

  std::vector<double> ImpliedDistribution(std::span<const graph::Edge> adj) const;
  std::string CheckInvariants(std::span<const graph::Edge> adj) const;

  // Number of non-empty digit groups — the K whose reduction §9.2 predicts.
  int NumActiveGroups() const;
  std::size_t MemoryBytes() const;

 private:
  struct Subgroup {
    std::vector<uint32_t> members;
    IndexMap inv;  // neighbor index -> member position
  };

  struct DigitGroup {
    std::vector<Subgroup> subs;      // indexed by digit value - 1 (size B-1)
    sampling::AliasTable sub_alias;  // over non-empty subgroups
    std::vector<uint16_t> sub_digits;  // alias slot -> digit value
    uint64_t weight_digits = 0;        // sum of digit values (units of B^j)
  };

  uint32_t Base() const { return uint32_t{1} << log2_base_; }
  uint32_t DigitOf(uint64_t bias, int j) const {
    return static_cast<uint32_t>((bias >> (j * log2_base_)) & (Base() - 1));
  }
  static uint64_t IntBias(double bias) { return static_cast<uint64_t>(bias); }

  void EnsureGroup(int j);
  void RebuildGroupAlias(DigitGroup& group, int j);
  void RebuildInterAlias();

  int log2_base_;
  std::vector<DigitGroup> groups_;  // by digit position j
  sampling::AliasTable inter_;
  std::vector<int16_t> inter_positions_;  // alias slot -> digit position
};

// Whole-graph wrapper with the streaming-update surface of BingoStore;
// used by the ablation benchmark.
class RadixBaseStore {
 public:
  RadixBaseStore(graph::DynamicGraph graph, int log2_base);

  const graph::DynamicGraph& Graph() const { return graph_; }
  int Log2Base() const { return log2_base_; }

  graph::VertexId SampleNeighbor(graph::VertexId v, util::Rng& rng) const;
  void StreamingInsert(graph::VertexId src, graph::VertexId dst, double bias);
  bool StreamingDelete(graph::VertexId src, graph::VertexId dst);

  double AverageActiveGroups() const;
  std::size_t MemoryBytes() const;
  std::string CheckInvariants() const;

 private:
  int log2_base_;
  graph::DynamicGraph graph_;
  std::vector<RadixBaseVertexSampler> samplers_;
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_RADIX_BASE_H_
