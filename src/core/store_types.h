// Shared store-surface types.
//
// Every sampler store backend — BingoStore, the alias/ITS/rejection
// baseline stores, and PartitionedBingoStore — reports batched updates and
// memory consumption through these types, so the walk layer (engine, apps,
// analytics, WalkService, CLI, benchmarks) can treat backends
// interchangeably. See src/walk/store.h for the full store concept.

#ifndef BINGO_SRC_CORE_STORE_TYPES_H_
#define BINGO_SRC_CORE_STORE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace bingo::core {

struct BatchResult {
  uint64_t inserted = 0;
  uint64_t deleted = 0;
  uint64_t skipped_deletes = 0;  // delete requests with no surviving match

  BatchResult& operator+=(const BatchResult& other) {
    inserted += other.inserted;
    deleted += other.deleted;
    skipped_deletes += other.skipped_deletes;
    return *this;
  }
  friend bool operator==(const BatchResult& a, const BatchResult& b) {
    return a.inserted == b.inserted && a.deleted == b.deleted &&
           a.skipped_deletes == b.skipped_deletes;
  }
};

struct StoreMemoryStats {
  std::size_t graph_bytes = 0;
  std::size_t sampler_fixed_bytes = 0;    // per-vertex sampler objects
  std::size_t sampler_dynamic_bytes = 0;  // heap payload behind them

  std::size_t SamplerBytes() const {
    return sampler_fixed_bytes + sampler_dynamic_bytes;
  }
  std::size_t TotalBytes() const { return graph_bytes + SamplerBytes(); }

  StoreMemoryStats& operator+=(const StoreMemoryStats& other) {
    graph_bytes += other.graph_bytes;
    sampler_fixed_bytes += other.sampler_fixed_bytes;
    sampler_dynamic_bytes += other.sampler_dynamic_bytes;
    return *this;
  }
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_STORE_TYPES_H_
