#include "src/core/groups.h"

#include <algorithm>
#include <cassert>

#include "src/util/bitops.h"

namespace bingo::core {

const char* ToString(GroupKind kind) {
  switch (kind) {
    case GroupKind::kEmpty:
      return "empty";
    case GroupKind::kDense:
      return "dense";
    case GroupKind::kOneElement:
      return "one-element";
    case GroupKind::kSparse:
      return "sparse";
    case GroupKind::kRegular:
      return "regular";
  }
  return "?";
}

GroupKind ClassifyGroup(uint64_t count, uint64_t degree, const AdaptiveConfig& cfg) {
  if (count == 0) {
    return GroupKind::kEmpty;
  }
  if (!cfg.adaptive) {
    return GroupKind::kRegular;
  }
  const double ratio = 100.0 * static_cast<double>(count) / static_cast<double>(degree);
  if (ratio > cfg.alpha_percent) {
    return GroupKind::kDense;
  }
  if (count == 1) {
    return GroupKind::kOneElement;
  }
  if (ratio < cfg.beta_percent) {
    return GroupKind::kSparse;
  }
  return GroupKind::kRegular;
}

// ---------------------------------------------------------------- IndexMap --

void IndexMap::Grow(std::size_t min_live) {
  std::size_t cap = 8;
  while (cap < min_live * 2) {
    cap <<= 1;
  }
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(cap, kEmptySlot);
  used_ = 0;
  live_ = 0;
  for (uint64_t slot : old) {
    if (slot != kEmptySlot && slot != kTombstoneSlot) {
      Insert(static_cast<uint32_t>(slot >> 32), static_cast<uint32_t>(slot));
    }
  }
}

void IndexMap::Insert(uint32_t key, uint32_t value) {
  if (slots_.empty() || (used_ + 1) * 4 >= slots_.size() * 3) {
    Grow(std::max<std::size_t>(live_ + 1, 4));
  }
  std::size_t pos = (key * 0x9e3779b9u) & Mask();
  while (slots_[pos] != kEmptySlot && slots_[pos] != kTombstoneSlot) {
    pos = (pos + 1) & Mask();
  }
  if (slots_[pos] == kEmptySlot) {
    ++used_;
  }
  slots_[pos] = (static_cast<uint64_t>(key) << 32) | value;
  ++live_;
}

std::optional<uint32_t> IndexMap::Find(uint32_t key) const {
  if (slots_.empty()) {
    return std::nullopt;
  }
  std::size_t pos = (key * 0x9e3779b9u) & Mask();
  while (slots_[pos] != kEmptySlot) {
    if (slots_[pos] != kTombstoneSlot &&
        static_cast<uint32_t>(slots_[pos] >> 32) == key) {
      return static_cast<uint32_t>(slots_[pos]);
    }
    pos = (pos + 1) & Mask();
  }
  return std::nullopt;
}

bool IndexMap::Erase(uint32_t key) {
  if (slots_.empty()) {
    return false;
  }
  std::size_t pos = (key * 0x9e3779b9u) & Mask();
  while (slots_[pos] != kEmptySlot) {
    if (slots_[pos] != kTombstoneSlot &&
        static_cast<uint32_t>(slots_[pos] >> 32) == key) {
      slots_[pos] = kTombstoneSlot;
      --live_;
      return true;
    }
    pos = (pos + 1) & Mask();
  }
  return false;
}

bool IndexMap::Update(uint32_t key, uint32_t value) {
  if (slots_.empty()) {
    return false;
  }
  std::size_t pos = (key * 0x9e3779b9u) & Mask();
  while (slots_[pos] != kEmptySlot) {
    if (slots_[pos] != kTombstoneSlot &&
        static_cast<uint32_t>(slots_[pos] >> 32) == key) {
      slots_[pos] = (static_cast<uint64_t>(key) << 32) | value;
      return true;
    }
    pos = (pos + 1) & Mask();
  }
  return false;
}

void IndexMap::Clear() {
  slots_.clear();
  live_ = 0;
  used_ = 0;
}

// -------------------------------------------------------------- RadixGroup --

void RadixGroup::EnsureInvSize(uint32_t min_size) {
  if (inv_.size() < min_size) {
    inv_.resize(std::max<std::size_t>(min_size, inv_.size() * 2), kNoPosition);
  }
}

void RadixGroup::Insert(uint32_t idx, uint32_t degree_hint) {
  switch (kind_) {
    case GroupKind::kEmpty:
      kind_ = GroupKind::kOneElement;
      single_ = idx;
      break;
    case GroupKind::kOneElement: {
      // Escalate to regular; the post-op reclassification settles the kind.
      const uint32_t existing = single_;
      const uint32_t both[2] = {existing, idx};
      RebuildAs(GroupKind::kRegular, both, degree_hint);
      return;  // RebuildAs set count_ already
    }
    case GroupKind::kDense:
      break;  // count only
    case GroupKind::kSparse:
      map_.Insert(idx, static_cast<uint32_t>(members_.size()));
      members_.push_back(idx);
      break;
    case GroupKind::kRegular:
      EnsureInvSize(idx + 1);
      inv_[idx] = static_cast<uint32_t>(members_.size());
      members_.push_back(idx);
      break;
  }
  ++count_;
}

void RadixGroup::RemoveAtPosition(uint32_t pos) {
  const uint32_t last = static_cast<uint32_t>(members_.size()) - 1;
  const uint32_t removed = members_[pos];
  if (pos != last) {
    const uint32_t moved = members_[last];
    members_[pos] = moved;
    if (kind_ == GroupKind::kRegular) {
      inv_[moved] = pos;
    } else {
      map_.Update(moved, pos);
    }
  }
  members_.pop_back();
  if (kind_ == GroupKind::kRegular) {
    inv_[removed] = kNoPosition;
  } else {
    map_.Erase(removed);
  }
}

void RadixGroup::Remove(uint32_t idx) {
  assert(count_ > 0);
  switch (kind_) {
    case GroupKind::kEmpty:
      assert(false && "remove from empty group");
      return;
    case GroupKind::kDense:
      break;  // count only
    case GroupKind::kOneElement:
      assert(single_ == idx);
      single_ = kNoPosition;
      break;
    case GroupKind::kSparse: {
      const auto pos = map_.Find(idx);
      assert(pos.has_value());
      RemoveAtPosition(*pos);
      break;
    }
    case GroupKind::kRegular: {
      assert(idx < inv_.size() && inv_[idx] != kNoPosition);
      RemoveAtPosition(inv_[idx]);
      break;
    }
  }
  --count_;
  if (count_ == 0) {
    Clear();
  }
}

void RadixGroup::Rename(uint32_t from, uint32_t to) {
  switch (kind_) {
    case GroupKind::kEmpty:
    case GroupKind::kDense:
      return;
    case GroupKind::kOneElement:
      if (single_ == from) {
        single_ = to;
      }
      return;
    case GroupKind::kSparse: {
      const auto pos = map_.Find(from);
      assert(pos.has_value());
      members_[*pos] = to;
      map_.Erase(from);
      map_.Insert(to, *pos);
      return;
    }
    case GroupKind::kRegular: {
      assert(from < inv_.size() && inv_[from] != kNoPosition);
      const uint32_t pos = inv_[from];
      members_[pos] = to;
      EnsureInvSize(to + 1);
      inv_[to] = pos;
      inv_[from] = kNoPosition;
      return;
    }
  }
}

void RadixGroup::BatchRemove(std::span<const uint32_t> idxs) {
  if (idxs.empty()) {
    return;
  }
  if (kind_ == GroupKind::kDense) {
    assert(idxs.size() <= count_);
    count_ -= static_cast<uint32_t>(idxs.size());
    if (count_ == 0) {
      Clear();
    }
    return;
  }
  if (kind_ == GroupKind::kOneElement) {
    assert(idxs.size() == 1 && idxs[0] == single_);
    Clear();
    return;
  }

  // Two-phase parallel delete-and-swap (Fig 10b). Positions to delete:
  std::vector<uint32_t> positions;
  positions.reserve(idxs.size());
  for (uint32_t idx : idxs) {
    if (kind_ == GroupKind::kRegular) {
      assert(idx < inv_.size() && inv_[idx] != kNoPosition);
      positions.push_back(inv_[idx]);
    } else {
      const auto pos = map_.Find(idx);
      assert(pos.has_value());
      positions.push_back(*pos);
    }
  }
  const uint32_t m = static_cast<uint32_t>(members_.size());
  const uint32_t n = static_cast<uint32_t>(positions.size());
  const uint32_t window_begin = m - n;
  std::sort(positions.begin(), positions.end());

  // Phase 1: within the tail window [m-n, m), drop the gamma entries that
  // are themselves scheduled for deletion; the survivors are the fillers.
  std::vector<uint32_t> fillers;  // member values, window order preserved
  {
    std::size_t cursor = std::lower_bound(positions.begin(), positions.end(),
                                          window_begin) -
                         positions.begin();
    for (uint32_t pos = window_begin; pos < m; ++pos) {
      if (cursor < positions.size() && positions[cursor] == pos) {
        ++cursor;  // scheduled for deletion: skip
      } else {
        fillers.push_back(members_[pos]);
      }
    }
  }

  // Erase inverted-index entries for every deleted member before moves
  // overwrite their slots.
  for (uint32_t pos : positions) {
    const uint32_t removed = members_[pos];
    if (kind_ == GroupKind::kRegular) {
      inv_[removed] = kNoPosition;
    } else {
      map_.Erase(removed);
    }
  }

  // Phase 2: the n - gamma holes in the front are filled by the n - gamma
  // guaranteed-surviving fillers from the tail.
  std::size_t filler_cursor = 0;
  for (uint32_t pos : positions) {
    if (pos >= window_begin) {
      break;  // positions are sorted; the rest are in the window
    }
    const uint32_t moved = fillers[filler_cursor++];
    members_[pos] = moved;
    if (kind_ == GroupKind::kRegular) {
      inv_[moved] = pos;
    } else {
      map_.Update(moved, pos);
    }
  }
  assert(filler_cursor == fillers.size());

  members_.resize(m - n);
  count_ -= n;
  if (count_ == 0) {
    Clear();
  }
}

uint32_t RadixGroup::PickUniform(util::Rng& rng) const {
  assert(count_ > 0);
  if (kind_ == GroupKind::kOneElement) {
    return single_;
  }
  assert(kind_ == GroupKind::kSparse || kind_ == GroupKind::kRegular);
  return members_[rng.NextBounded(members_.size())];
}

void RadixGroup::RebuildAs(GroupKind target, std::span<const uint32_t> members,
                           uint32_t degree_hint) {
  Clear();
  kind_ = target;
  count_ = static_cast<uint32_t>(members.size());
  switch (target) {
    case GroupKind::kEmpty:
      assert(members.empty());
      kind_ = GroupKind::kEmpty;
      count_ = 0;
      break;
    case GroupKind::kDense:
      break;
    case GroupKind::kOneElement:
      assert(members.size() == 1);
      single_ = members[0];
      break;
    case GroupKind::kSparse:
      // Power-of-two capacity headroom (Hornet-style) so the next few
      // appends do not reallocate.
      members_.reserve(util::CeilPow2(members.size()));
      members_.assign(members.begin(), members.end());
      for (uint32_t pos = 0; pos < members_.size(); ++pos) {
        map_.Insert(members_[pos], pos);
      }
      break;
    case GroupKind::kRegular:
      members_.reserve(util::CeilPow2(members.size()));
      members_.assign(members.begin(), members.end());
      inv_.reserve(util::CeilPow2(std::max<uint32_t>(degree_hint, 1) + 1));
      inv_.assign(std::max<uint32_t>(degree_hint, 1), kNoPosition);
      for (uint32_t pos = 0; pos < members_.size(); ++pos) {
        EnsureInvSize(members_[pos] + 1);
        inv_[members_[pos]] = pos;
      }
      break;
  }
}

void RadixGroup::CollectMembers(std::vector<uint32_t>& out) const {
  switch (kind_) {
    case GroupKind::kEmpty:
      return;
    case GroupKind::kDense:
      assert(false && "dense groups do not store members");
      return;
    case GroupKind::kOneElement:
      out.push_back(single_);
      return;
    case GroupKind::kSparse:
    case GroupKind::kRegular:
      out.insert(out.end(), members_.begin(), members_.end());
      return;
  }
}

bool RadixGroup::Contains(uint32_t idx) const {
  switch (kind_) {
    case GroupKind::kEmpty:
      return false;
    case GroupKind::kDense:
      assert(false && "dense groups cannot answer membership");
      return false;
    case GroupKind::kOneElement:
      return single_ == idx;
    case GroupKind::kSparse:
      return map_.Find(idx).has_value();
    case GroupKind::kRegular:
      return idx < inv_.size() && inv_[idx] != kNoPosition;
  }
  return false;
}

void RadixGroup::Clear() {
  kind_ = GroupKind::kEmpty;
  count_ = 0;
  single_ = kNoPosition;
  members_.clear();
  members_.shrink_to_fit();
  inv_.clear();
  inv_.shrink_to_fit();
  map_.Clear();
}

std::size_t RadixGroup::MemoryBytes() const {
  return members_.capacity() * sizeof(uint32_t) + inv_.capacity() * sizeof(uint32_t) +
         map_.MemoryBytes();
}

std::string RadixGroup::CheckInvariants() const {
  switch (kind_) {
    case GroupKind::kEmpty:
      if (count_ != 0 || !members_.empty()) {
        return "empty group with residual state";
      }
      return {};
    case GroupKind::kDense:
      return {};  // count is validated by the vertex-level audit
    case GroupKind::kOneElement:
      if (count_ != 1 || single_ == kNoPosition) {
        return "one-element group inconsistent";
      }
      return {};
    case GroupKind::kSparse: {
      if (count_ != members_.size() || map_.Size() != members_.size()) {
        return "sparse group count/map size mismatch";
      }
      for (uint32_t pos = 0; pos < members_.size(); ++pos) {
        const auto found = map_.Find(members_[pos]);
        if (!found || *found != pos) {
          return "sparse inverted index mismatch";
        }
      }
      return {};
    }
    case GroupKind::kRegular: {
      if (count_ != members_.size()) {
        return "regular group count mismatch";
      }
      for (uint32_t pos = 0; pos < members_.size(); ++pos) {
        const uint32_t idx = members_[pos];
        if (idx >= inv_.size() || inv_[idx] != pos) {
          return "regular inverted index mismatch";
        }
      }
      uint32_t live = 0;
      for (uint32_t idx = 0; idx < inv_.size(); ++idx) {
        if (inv_[idx] != kNoPosition) {
          ++live;
          if (inv_[idx] >= members_.size() || members_[inv_[idx]] != idx) {
            return "regular inverted index points to wrong member";
          }
        }
      }
      if (live != members_.size()) {
        return "regular inverted index live-count mismatch";
      }
      return {};
    }
  }
  return {};
}

}  // namespace bingo::core
