// Batched-update planning (§5.2, Fig 10a).
//
// The paper's workflow first reorders the raw update stream so all requests
// of one vertex are contiguous ("Reordering requests" on the host), then
// processes vertices in parallel, each running insert -> delete -> rebuild.
// This module implements the reordering step; BingoStore::ApplyBatch runs
// the per-vertex pipeline on the thread pool.
//
// The reorder is allocation-light: one index array stably sorted by source
// vertex plus [begin, end) ranges into it, so a 100K-update batch costs two
// array allocations rather than per-vertex containers.

#ifndef BINGO_SRC_CORE_BATCH_H_
#define BINGO_SRC_CORE_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/types.h"

namespace bingo::core {

struct GroupedUpdates {
  // Update indices grouped by source vertex; within a group the original
  // stream order is preserved (it defines duplicate-edge timestamps).
  std::vector<uint32_t> order;
  // One [begin, end) slice of `order` per touched vertex.
  struct Range {
    graph::VertexId vertex;
    uint32_t begin;
    uint32_t end;
  };
  std::vector<Range> ranges;
};

// Stable-groups `updates` by source vertex. O(n log n).
GroupedUpdates GroupUpdatesByVertex(const graph::UpdateList& updates);

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_BATCH_H_
