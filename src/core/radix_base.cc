#include "src/core/radix_base.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bingo::core {

void RadixBaseVertexSampler::EnsureGroup(int j) {
  if (static_cast<int>(groups_.size()) <= j) {
    groups_.resize(j + 1);
  }
}

void RadixBaseVertexSampler::Build(std::span<const graph::Edge> adj) {
  groups_.clear();
  for (uint32_t idx = 0; idx < adj.size(); ++idx) {
    InsertEdge(adj, idx);
  }
  FinishUpdate();
}

void RadixBaseVertexSampler::InsertEdge(std::span<const graph::Edge> adj,
                                        uint32_t idx) {
  uint64_t bias = IntBias(adj[idx].bias);
  for (int j = 0; bias != 0; ++j, bias >>= log2_base_) {
    const uint32_t digit = static_cast<uint32_t>(bias & (Base() - 1));
    if (digit == 0) {
      continue;
    }
    EnsureGroup(j);
    DigitGroup& group = groups_[j];
    if (group.subs.empty()) {
      group.subs.resize(Base() - 1);
    }
    Subgroup& sub = group.subs[digit - 1];
    sub.inv.Insert(idx, static_cast<uint32_t>(sub.members.size()));
    sub.members.push_back(idx);
    group.weight_digits += digit;
  }
}

void RadixBaseVertexSampler::RemoveEdge(std::span<const graph::Edge> adj,
                                        uint32_t idx) {
  uint64_t bias = IntBias(adj[idx].bias);
  for (int j = 0; bias != 0; ++j, bias >>= log2_base_) {
    const uint32_t digit = static_cast<uint32_t>(bias & (Base() - 1));
    if (digit == 0) {
      continue;
    }
    DigitGroup& group = groups_[j];
    Subgroup& sub = group.subs[digit - 1];
    const auto pos = sub.inv.Find(idx);
    assert(pos.has_value());
    const uint32_t last = static_cast<uint32_t>(sub.members.size()) - 1;
    if (*pos != last) {
      sub.members[*pos] = sub.members[last];
      sub.inv.Update(sub.members[*pos], *pos);
    }
    sub.members.pop_back();
    sub.inv.Erase(idx);
    group.weight_digits -= digit;
  }
}

void RadixBaseVertexSampler::RenameIndex(double moved_bias, uint32_t from,
                                         uint32_t to) {
  uint64_t bias = IntBias(moved_bias);
  for (int j = 0; bias != 0; ++j, bias >>= log2_base_) {
    const uint32_t digit = static_cast<uint32_t>(bias & (Base() - 1));
    if (digit == 0) {
      continue;
    }
    Subgroup& sub = groups_[j].subs[digit - 1];
    const auto pos = sub.inv.Find(from);
    assert(pos.has_value());
    sub.members[*pos] = to;
    sub.inv.Erase(from);
    sub.inv.Insert(to, *pos);
  }
}

void RadixBaseVertexSampler::RebuildGroupAlias(DigitGroup& group, int /*j*/) {
  std::vector<double> weights;
  group.sub_digits.clear();
  for (uint32_t v = 1; v < Base(); ++v) {
    const Subgroup& sub = group.subs[v - 1];
    if (!sub.members.empty()) {
      weights.push_back(static_cast<double>(v) *
                        static_cast<double>(sub.members.size()));
      group.sub_digits.push_back(static_cast<uint16_t>(v));
    }
  }
  group.sub_alias.Build(weights);
}

void RadixBaseVertexSampler::RebuildInterAlias() {
  std::vector<double> weights;
  inter_positions_.clear();
  for (int j = 0; j < static_cast<int>(groups_.size()); ++j) {
    if (groups_[j].weight_digits != 0) {
      weights.push_back(std::ldexp(static_cast<double>(groups_[j].weight_digits),
                                   j * log2_base_));
      inter_positions_.push_back(static_cast<int16_t>(j));
    }
  }
  inter_.Build(weights);
}

void RadixBaseVertexSampler::FinishUpdate() {
  for (int j = 0; j < static_cast<int>(groups_.size()); ++j) {
    if (!groups_[j].subs.empty()) {
      RebuildGroupAlias(groups_[j], j);
    }
  }
  RebuildInterAlias();
}

uint32_t RadixBaseVertexSampler::SampleIndex(util::Rng& rng) const {
  if (inter_positions_.empty()) {
    return kNoNeighbor;
  }
  // Stage (i): pick the digit position.
  const int j = inter_positions_[inter_.Sample(rng)];
  const DigitGroup& group = groups_[j];
  // Stage (ii): pick the subgroup (digit value) via its alias table.
  const uint16_t digit = group.sub_digits[group.sub_alias.Sample(rng)];
  // Stage (iii): uniform pick inside the equal-bias subgroup.
  const Subgroup& sub = group.subs[digit - 1];
  return sub.members[rng.NextBounded(sub.members.size())];
}

void RadixBaseVertexSampler::SampleIndexBatch(util::Rng* const* rngs,
                                              std::size_t n,
                                              uint32_t* out) const {
  if (inter_positions_.empty()) {
    std::fill_n(out, n, kNoNeighbor);
    return;
  }
  constexpr std::size_t kTile = 64;
  uint32_t slots[kTile];
  for (std::size_t begin = 0; begin < n; begin += kTile) {
    const std::size_t count = std::min(kTile, n - begin);
    // Stage (i): inter-group alias draws, lane-batched.
    inter_.SampleBatch(rngs + begin, count, slots);
    // Stages (ii)/(iii): subgroup alias + uniform pick, per walker, each
    // from that walker's own stream.
    for (std::size_t i = 0; i < count; ++i) {
      util::Rng& rng = *rngs[begin + i];
      const DigitGroup& group = groups_[inter_positions_[slots[i]]];
      const uint16_t digit = group.sub_digits[group.sub_alias.Sample(rng)];
      const Subgroup& sub = group.subs[digit - 1];
      out[begin + i] = sub.members[rng.NextBounded(sub.members.size())];
    }
  }
}

std::vector<double> RadixBaseVertexSampler::ImpliedDistribution(
    std::span<const graph::Edge> adj) const {
  std::vector<double> probs(adj.size(), 0.0);
  const auto inter_probs = inter_.ImpliedProbabilities();
  for (std::size_t slot = 0; slot < inter_positions_.size(); ++slot) {
    const DigitGroup& group = groups_[inter_positions_[slot]];
    const auto sub_probs = group.sub_alias.ImpliedProbabilities();
    for (std::size_t s = 0; s < group.sub_digits.size(); ++s) {
      const Subgroup& sub = group.subs[group.sub_digits[s] - 1];
      const double share =
          inter_probs[slot] * sub_probs[s] / static_cast<double>(sub.members.size());
      for (uint32_t idx : sub.members) {
        probs[idx] += share;
      }
    }
  }
  return probs;
}

std::string RadixBaseVertexSampler::CheckInvariants(
    std::span<const graph::Edge> adj) const {
  // Recompute subgroup membership from the adjacency.
  for (int j = 0; j < static_cast<int>(groups_.size()); ++j) {
    uint64_t want_weight = 0;
    for (uint32_t v = 1; v < Base(); ++v) {
      uint32_t want = 0;
      for (uint32_t idx = 0; idx < adj.size(); ++idx) {
        if (DigitOf(IntBias(adj[idx].bias), j) == v) {
          ++want;
        }
      }
      want_weight += static_cast<uint64_t>(want) * v;
      const uint32_t have =
          groups_[j].subs.empty()
              ? 0
              : static_cast<uint32_t>(groups_[j].subs[v - 1].members.size());
      if (want != have) {
        return "subgroup (" + std::to_string(j) + "," + std::to_string(v) +
               ") count mismatch";
      }
    }
    if (want_weight != groups_[j].weight_digits) {
      return "group " + std::to_string(j) + " weight mismatch";
    }
  }
  return {};
}

int RadixBaseVertexSampler::NumActiveGroups() const {
  int active = 0;
  for (const DigitGroup& group : groups_) {
    if (group.weight_digits != 0) {
      ++active;
    }
  }
  return active;
}

std::size_t RadixBaseVertexSampler::MemoryBytes() const {
  std::size_t total = groups_.capacity() * sizeof(DigitGroup);
  for (const DigitGroup& group : groups_) {
    total += group.subs.capacity() * sizeof(Subgroup);
    for (const Subgroup& sub : group.subs) {
      total += sub.members.capacity() * sizeof(uint32_t) + sub.inv.MemoryBytes();
    }
    total += group.sub_alias.MemoryBytes() +
             group.sub_digits.capacity() * sizeof(uint16_t);
  }
  total += inter_.MemoryBytes() + inter_positions_.capacity() * sizeof(int16_t);
  return total;
}

// ---------------------------------------------------------- RadixBaseStore --

RadixBaseStore::RadixBaseStore(graph::DynamicGraph graph, int log2_base)
    : log2_base_(log2_base), graph_(std::move(graph)) {
  samplers_.assign(graph_.NumVertices(), RadixBaseVertexSampler(log2_base_));
  for (graph::VertexId v = 0; v < graph_.NumVertices(); ++v) {
    samplers_[v].Build(graph_.Neighbors(v));
  }
}

graph::VertexId RadixBaseStore::SampleNeighbor(graph::VertexId v,
                                               util::Rng& rng) const {
  const uint32_t idx = samplers_[v].SampleIndex(rng);
  return idx == RadixBaseVertexSampler::kNoNeighbor
             ? graph::kInvalidVertex
             : graph_.NeighborAt(v, idx).dst;
}

void RadixBaseStore::StreamingInsert(graph::VertexId src, graph::VertexId dst,
                                     double bias) {
  const uint32_t idx = graph_.Insert(src, dst, bias);
  samplers_[src].InsertEdge(graph_.Neighbors(src), idx);
  samplers_[src].FinishUpdate();
}

bool RadixBaseStore::StreamingDelete(graph::VertexId src, graph::VertexId dst) {
  const auto idx = graph_.FindEarliest(src, dst);
  if (!idx.has_value()) {
    return false;
  }
  samplers_[src].RemoveEdge(graph_.Neighbors(src), *idx);
  const auto result = graph_.SwapRemove(src, *idx);
  if (result.moved) {
    samplers_[src].RenameIndex(result.moved_edge.bias, result.moved_from,
                               result.moved_to);
  }
  samplers_[src].FinishUpdate();
  return true;
}

double RadixBaseStore::AverageActiveGroups() const {
  uint64_t total = 0;
  uint64_t vertices = 0;
  for (graph::VertexId v = 0; v < graph_.NumVertices(); ++v) {
    if (graph_.Degree(v) > 0) {
      total += samplers_[v].NumActiveGroups();
      ++vertices;
    }
  }
  return vertices == 0 ? 0.0
                       : static_cast<double>(total) / static_cast<double>(vertices);
}

std::size_t RadixBaseStore::MemoryBytes() const {
  std::size_t total = graph_.MemoryBytes() +
                      samplers_.capacity() * sizeof(RadixBaseVertexSampler);
  for (const auto& s : samplers_) {
    total += s.MemoryBytes();
  }
  return total;
}

std::string RadixBaseStore::CheckInvariants() const {
  for (graph::VertexId v = 0; v < graph_.NumVertices(); ++v) {
    const std::string err = samplers_[v].CheckInvariants(graph_.Neighbors(v));
    if (!err.empty()) {
      return "vertex " + std::to_string(v) + ": " + err;
    }
  }
  return {};
}

}  // namespace bingo::core
