// Walk-aware block cache over an on-disk CSR container: the residency
// manager of the out-of-core walk path.
//
// Each CSR block carries an explicit state (the randgraph engine's cache
// discipline):
//
//   INACTIVE  not resident; the default
//   ACTIVE    resident, not currently driving a walk pass
//   USING     resident and pinned by an in-flight walk pass (never evicted)
//   USED      resident, already consumed by a pass this scheduling round —
//             first in line for eviction at equal parked-walker rank
//
// Load() maps a block through CsrMmap::MapBlock and, when a resident-byte
// budget is set, first evicts unpinned blocks — lowest parked-walker count
// first (USED preferred over ACTIVE at equal rank, then lowest id) — until
// the newcomer fits. PickNext() is the scheduler's rank query: the block
// with the most parked walkers, preferring already-resident blocks among
// ties so a hot resident block drains before paying another map.
//
// Concurrency contract: Resident() is a lock-free acquire-load probe, safe
// from any thread at any time. In *unconstrained* mode (budget 0) Load()
// only ever adds mappings, so transparent demand-faulting from concurrent
// walker threads is safe. In *budgeted* mode eviction invalidates resident
// pointers, so Load()/BeginUse()/EndUse() must only be called from the
// scheduling thread between walk passes (walk/ooc.h's driver enforces the
// single-scheduler rule); walker threads fall back to pread for
// non-resident blocks and never trigger a map.

#ifndef BINGO_SRC_CORE_BLOCK_CACHE_H_
#define BINGO_SRC_CORE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/csr_mmap.h"
#include "src/util/sync.h"

namespace bingo::core {

enum class BlockState : uint8_t { kInactive = 0, kActive, kUsing, kUsed };

struct BlockCacheOptions {
  // Resident edge-byte budget. 0 = unconstrained: demand-map every block,
  // never evict.
  std::size_t budget_bytes = 0;
  // Verify each block's stored CRC the first time it is mapped.
  bool verify_crc = true;
};

struct BlockCacheStats {
  uint64_t loads = 0;       // blocks mapped from disk
  uint64_t hits = 0;        // Load() calls satisfied by residency
  uint64_t evictions = 0;
  uint64_t crc_failures = 0;
  // Loads admitted past the budget because every resident block was pinned
  // (or the block alone exceeds the budget). Bounded overshoot, counted.
  uint64_t budget_overshoots = 0;
  std::size_t resident_bytes = 0;
  std::size_t peak_resident_bytes = 0;
};

class BlockCache {
 public:
  BlockCache(const graph::CsrMmap* csr, BlockCacheOptions options);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  uint32_t NumBlocks() const { return num_blocks_; }
  bool Budgeted() const { return options_.budget_bytes > 0; }

  // Lock-free residency probe: the block's first edge record, or nullptr
  // when not resident (or resident but empty).
  const graph::Edge* Resident(uint32_t b) const {
    return resident_[b].load(std::memory_order_acquire);
  }

  // Ensures block b is resident (evicting in budgeted mode, see above).
  // Returns false only on map/CRC failure; an empty block loads trivially.
  bool Load(uint32_t b, std::string* error = nullptr) BINGO_EXCLUDES(mutex_);

  // Pass pinning: ACTIVE -> USING on entry, USING -> USED on exit.
  void BeginUse(uint32_t b) BINGO_EXCLUDES(mutex_);
  void EndUse(uint32_t b) BINGO_EXCLUDES(mutex_);

  // Scheduler rank input: how many walkers currently wait on block b.
  void SetParked(uint32_t b, uint64_t walkers) {
    parked_[b].store(walkers, std::memory_order_relaxed);
  }
  uint64_t Parked(uint32_t b) const {
    return parked_[b].load(std::memory_order_relaxed);
  }

  // The block with the most parked walkers (resident preferred among ties,
  // then lowest id); -1 when no block has parked walkers.
  int64_t PickNext() const;

  BlockState State(uint32_t b) const BINGO_EXCLUDES(mutex_);
  BlockCacheStats Stats() const BINGO_EXCLUDES(mutex_);

  // Internal-consistency audit for CheckInvariants: resident byte
  // accounting must match the live mappings. Empty string = consistent.
  std::string CheckAccounting() const BINGO_EXCLUDES(mutex_);

 private:
  void EvictLocked(uint32_t b) BINGO_REQUIRES(mutex_);
  // Lowest-ranked evictable block (ACTIVE or USED), or -1.
  int64_t PickEvictionLocked() const BINGO_REQUIRES(mutex_);

  const graph::CsrMmap* csr_;
  BlockCacheOptions options_;
  uint32_t num_blocks_ = 0;

  std::vector<std::atomic<const graph::Edge*>> resident_;
  std::vector<std::atomic<uint64_t>> parked_;

  mutable util::Mutex mutex_;
  std::vector<BlockState> states_ BINGO_GUARDED_BY(mutex_);
  std::vector<graph::CsrMapHandle> handles_ BINGO_GUARDED_BY(mutex_);
  std::vector<uint8_t> crc_checked_ BINGO_GUARDED_BY(mutex_);
  BlockCacheStats stats_ BINGO_GUARDED_BY(mutex_);
};

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_BLOCK_CACHE_H_
