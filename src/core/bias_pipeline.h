// The composable bias pipeline: effective bias as a product of factors.
//
//   effective(e) = static_weight(e)
//                  x Decay(logical_now - e.timestamp)
//                  x TypeGate(type(src), type(dst))
//
// The pipeline composes the factors into ONE scalar at batch-apply time, so
// the radix bucketing, the decimal group, and every sampler backend keep
// factorizing a single per-edge bias and stay untouched at their cores: a
// stored Edge.bias IS the effective bias under the store's current logical
// epoch.
//
// Time is LOGICAL: the epoch only advances through an explicit
// graph::MakeAdvanceTime update flowing through ApplyBatch, never through a
// wall clock (bingo_lint rule wall-clock-time enforces this in src/core and
// src/walk). That keeps stores pure functions of (initial edges, applied
// updates): the same batch sequence — clock ticks included — replays to the
// same bits on every replica, shard layout, and recovery path.
//
// Decay model: an edge of age `a` epochs carries factor decay^min(a, H)
// where H is an optional horizon (0 = unbounded). Advancing the epoch from
// t0 to t1 multiplies each stored bias by decay^(age(t1) - age(t0)) — an
// incremental rescale whose multiply sequence is identical on every replay,
// so recovered stores stay bit-identical. DecayPow is deterministic binary
// exponentiation (no std::pow; libm results vary across platforms).
//
// Caveat (documented in README "Temporal, typed, and bipartite walks"):
// with a horizon, an AdvanceTime batch changes per-vertex distributions, so
// incremental walk corpora would need whole-corpus repairs; horizonless
// decay multiplies every edge of a vertex by the same factor and preserves
// all distributions, which is why the walk index only supports H = 0.

#ifndef BINGO_SRC_CORE_BIAS_PIPELINE_H_
#define BINGO_SRC_CORE_BIAS_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "src/graph/types.h"

namespace bingo::core {

// decay^k by binary exponentiation: a fixed, platform-independent multiply
// sequence for a given k (determinism contract).
inline double DecayPow(double decay, uint64_t k) {
  double result = 1.0;
  double base = decay;
  while (k > 0) {
    if ((k & 1) != 0) {
      result *= base;
    }
    base *= base;
    k >>= 1;
  }
  return result;
}

struct BiasPipeline {
  // Per-epoch retention factor in (0, 1]; 1.0 = decay off.
  double decay = 1.0;
  // Age cap in epochs; 0 = unbounded. With a horizon, an edge older than H
  // epochs stops decaying (factor floors at decay^H).
  uint32_t horizon = 0;
  // Vertex types: type(v) = v % num_types (<= 1 = untyped). The modular
  // assignment keeps the type table implicit — no per-vertex storage, and
  // sharding by v % num_shards stays independent of typing.
  uint32_t num_types = 1;
  // Row-major num_types x num_types multiplier on (type(src), type(dst));
  // empty = all-pass. A 0 entry forbids the edge class outright: the store
  // composes a 0 effective bias, which every sampler treats as structurally
  // unreachable (SplitBias(0) has no parts).
  std::vector<double> gate;

  bool DecayActive() const { return decay != 1.0; }
  bool GateActive() const { return num_types > 1 && !gate.empty(); }
  bool Active() const { return DecayActive() || GateActive(); }

  uint32_t TypeOf(graph::VertexId v) const {
    return num_types <= 1 ? 0 : v % num_types;
  }

  double Gate(graph::VertexId src, graph::VertexId dst) const {
    if (!GateActive()) {
      return 1.0;
    }
    return gate[static_cast<std::size_t>(TypeOf(src)) * num_types +
                TypeOf(dst)];
  }

  // Decayed age of an edge stamped `timestamp`, observed at `epoch`.
  // Future-stamped edges (timestamp > epoch) have age 0.
  uint64_t AgeAt(uint64_t epoch, uint32_t timestamp) const {
    const uint64_t age = epoch > timestamp ? epoch - timestamp : 0;
    return horizon != 0 && age > horizon ? horizon : age;
  }

  double DecayFactor(uint64_t epoch, uint32_t timestamp) const {
    if (!DecayActive()) {
      return 1.0;
    }
    return DecayPow(decay, AgeAt(epoch, timestamp));
  }

  // The factor a stored (already-composed) bias picks up when the epoch
  // advances old_epoch -> new_epoch. 1.0 exactly when nothing changes.
  double RescaleFactor(uint64_t old_epoch, uint64_t new_epoch,
                       uint32_t timestamp) const {
    if (!DecayActive()) {
      return 1.0;
    }
    const uint64_t k =
        AgeAt(new_epoch, timestamp) - AgeAt(old_epoch, timestamp);
    return k == 0 ? 1.0 : DecayPow(decay, k);
  }

  // Full composition for a fresh insert at `epoch`.
  double Compose(graph::VertexId src, graph::VertexId dst, double static_bias,
                 uint32_t timestamp, uint64_t epoch) const {
    return static_bias * DecayFactor(epoch, timestamp) * Gate(src, dst);
  }
};

// FNV-1a over the pipeline's STATIC parameters, mixed into the snapshot
// config fingerprint. The logical epoch is mutable state carried in the
// snapshot header, not part of the fingerprint.
inline uint64_t PipelineFingerprint(const BiasPipeline& pipeline) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix64 = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_double = [&mix64](double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    mix64(bits);
  };
  mix_double(pipeline.decay);
  mix64(pipeline.horizon);
  mix64(pipeline.num_types);
  mix64(pipeline.gate.size());
  for (const double g : pipeline.gate) {
    mix_double(g);
  }
  return h;
}

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_BIAS_PIPELINE_H_
