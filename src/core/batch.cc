#include "src/core/batch.h"

#include <algorithm>

namespace bingo::core {

GroupedUpdates GroupUpdatesByVertex(const graph::UpdateList& updates) {
  GroupedUpdates grouped;
  grouped.order.reserve(updates.size());
  for (uint32_t i = 0; i < updates.size(); ++i) {
    // Clock ticks carry no edge (src = kInvalidVertex); ApplyBatch handles
    // them before the per-vertex phase.
    if (updates[i].kind == graph::Update::Kind::kAdvanceTime) {
      continue;
    }
    grouped.order.push_back(i);
  }
  std::stable_sort(grouped.order.begin(), grouped.order.end(),
                   [&updates](uint32_t a, uint32_t b) {
                     return updates[a].src < updates[b].src;
                   });
  for (uint32_t i = 0; i < grouped.order.size();) {
    const graph::VertexId src = updates[grouped.order[i]].src;
    uint32_t end = i + 1;
    while (end < grouped.order.size() && updates[grouped.order[end]].src == src) {
      ++end;
    }
    grouped.ranges.push_back(GroupedUpdates::Range{src, i, end});
    i = end;
  }
  return grouped;
}

}  // namespace bingo::core
