// Store persistence: checkpoint a BingoStore's graph to disk and rebuild
// the store from it.
//
// The sampling structures are derived state (Theorem 4.1 makes them a pure
// function of the adjacency + config), so a snapshot is exactly the
// weighted edge multiset; loading rebuilds groups and alias tables in
// O(E·K) — the same cost as the initial bulk load.
//
// Snapshots are written in the *canonical edge order*: vertex-major, each
// vertex's out-edges stably sorted by timestamp. Bulk load preserves the
// stored timestamps, so per-vertex (timestamp, order) — exactly what the
// duplicate-edge deletion rule (§5.2) and the temporal decay pipeline
// consult — survives the round trip, and rebuilding from the same snapshot
// is fully deterministic: two loads of one snapshot produce bit-identical
// stores, walks included. The WAL-backed service layer (walk/service.h)
// leans on exactly this to make crash recovery reproduce the live store bit
// for bit.
//
// On-disk format (version 3): a checksummed header carrying the format
// version, a fingerprint of the BingoConfig the store was built with (a
// snapshot restored under a different config would imply different sampling
// structures), the true vertex count (trailing isolated vertices survive
// the round trip), the edge count, the WAL sequence number the snapshot
// covers, and the logical decay epoch; then the packed 20-byte edge records
// {src, dst, timestamp, bias} with their own CRC. Files are written
// atomically (temp + fsync + rename), so a crash mid-save never destroys
// the previous good snapshot. Version-2 files (no epoch, 16-byte records —
// timestamps load as 0) and legacy version-1 raw edge dumps are still
// readable.

#ifndef BINGO_SRC_CORE_SNAPSHOT_H_
#define BINGO_SRC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/core/bingo_store.h"

namespace bingo::core {

// Parsed snapshot header.
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t config_fingerprint = 0;  // 0 = unknown (legacy files)
  graph::VertexId num_vertices = 0;
  uint64_t num_edges = 0;
  // Updates up to and including this WAL sequence number are folded into
  // the snapshot; recovery replays only records with seq > wal_seq.
  uint64_t wal_seq = 0;
  // Logical decay epoch at save time (v3+; 0 for older files). Mutable
  // temporal state: carried in the header, excluded from the fingerprint.
  uint64_t logical_epoch = 0;
};

// Stable hash of the config knobs that shape sampling structures. Stored in
// the header and checked on load: restoring under a different config is an
// error, not a silent behavior change.
uint64_t ConfigFingerprint(const BingoConfig& config);

// The canonical edge list of a graph: vertex-major, per-vertex in insertion
// timestamp order — the order snapshots persist and rebuilds replay.
graph::WeightedEdgeList CanonicalEdgeList(const graph::DynamicGraph& g);

// Writes `g`'s live edges as a snapshot at `path` (atomically). On success
// `*bytes_written` (if given) receives the file size.
bool SaveGraphSnapshot(const graph::DynamicGraph& g, const BingoConfig& config,
                       const std::string& path, uint64_t wal_seq = 0,
                       uint64_t* bytes_written = nullptr);

// Convenience wrapper over SaveGraphSnapshot.
bool SaveSnapshot(const BingoStore& store, const std::string& path,
                  uint64_t wal_seq = 0);

// Reads the edge section (and header) without building a store. Returns
// false on missing/corrupt files. Legacy files yield version 1,
// fingerprint 0, and the implied vertex count.
bool LoadSnapshotEdges(const std::string& path, graph::WeightedEdgeList& edges,
                       SnapshotInfo* info = nullptr);

// Streams the edge section of a v2/v3 snapshot record by record — O(1)
// memory instead of materializing the whole edge list — in the canonical
// vertex-major order the file stores. `fn` returning false aborts the
// stream (and the call returns false). The payload CRC is verified after
// the last record, so on a false return the caller must discard whatever
// `fn` accumulated: the delivered records are tentative until the call
// returns true. Legacy v1 files are not streamable; callers fall back to
// LoadSnapshotEdges.
bool StreamSnapshotEdges(
    const std::string& path, SnapshotInfo* info,
    const std::function<bool(const graph::WeightedEdge&)>& fn);

// Rebuilds a store from a snapshot. Returns nullptr on I/O failure, on a
// corrupt file, or when the snapshot's config fingerprint does not match
// `config`. `num_vertices` overrides the vertex count (0 = the header's
// count; legacy files fall back to max id + 1).
std::unique_ptr<BingoStore> LoadSnapshot(const std::string& path,
                                         BingoConfig config = {},
                                         graph::VertexId num_vertices = 0,
                                         util::ThreadPool* pool = nullptr);

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_SNAPSHOT_H_
