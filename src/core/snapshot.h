// Store persistence: checkpoint a BingoStore's graph to disk and rebuild
// the store from it.
//
// The sampling structures are derived state (Theorem 4.1 makes them a pure
// function of the adjacency + config), so a snapshot is exactly the
// weighted edge multiset; loading rebuilds groups and alias tables in
// O(E·K) — the same cost as the initial bulk load. Edge timestamps are
// regenerated on load: duplicate-edge deletion order is preserved because
// serialization emits each vertex's adjacency in index order and bulk load
// assigns timestamps in emission order.

#ifndef BINGO_SRC_CORE_SNAPSHOT_H_
#define BINGO_SRC_CORE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "src/core/bingo_store.h"

namespace bingo::core {

// Writes the store's live edges (with biases) to `path` in the binary
// edge-list format of graph/io.h. Returns false on I/O failure.
bool SaveSnapshot(const BingoStore& store, const std::string& path);

// Rebuilds a store from a snapshot. Returns nullptr on I/O failure.
// `num_vertices` overrides the vertex-count (0 = max id + 1 from the file;
// pass the original count to preserve trailing isolated vertices).
std::unique_ptr<BingoStore> LoadSnapshot(const std::string& path,
                                         BingoConfig config = {},
                                         graph::VertexId num_vertices = 0,
                                         util::ThreadPool* pool = nullptr);

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_SNAPSHOT_H_
