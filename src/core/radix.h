// Radix-based bias decomposition (§4.1, §4.3).
//
// A bias w is decomposed by its binary representation (Eq. 3):
//     D(w) = { 2^k  |  w & 2^k != 0 }
// and group p_k collects the sub-biases of every neighbor whose bit k is
// set (Eq. 4), so W(p_k) = 2^k * |G_k| — group weights are implicit in the
// member counts and never stored.
//
// Floating-point biases (§4.3) are first scaled by the amortization factor
// lambda, then split into an integer part (radix-decomposed as above) and a
// decimal part. The decimal part is quantized to 32-bit fixed point so that
// all bookkeeping stays in exact integer arithmetic; the quantized value is
// the ground truth the samplers are tested against.

#ifndef BINGO_SRC_CORE_RADIX_H_
#define BINGO_SRC_CORE_RADIX_H_

#include <cmath>
#include <cstdint>

#include "src/util/bitops.h"

namespace bingo::core {

// Number of fractional bits in the fixed-point decimal representation.
inline constexpr int kDecimalBits = 32;
inline constexpr uint64_t kDecimalOne = uint64_t{1} << kDecimalBits;

// Largest supported scaled bias: the integer part must stay exactly
// representable in a double through the lambda scaling.
inline constexpr double kMaxScaledBias = 0x1p52;

// A lambda-scaled bias split into radix material.
struct BiasParts {
  uint64_t int_bits = 0;     // floor(w * lambda): bit k set => member of group p_k
  uint32_t dec_fixed = 0;    // frac(w * lambda) in units of 2^-32

  // Total weight in fixed-point units of 2^-32.
  uint64_t FixedWeight() const { return (int_bits << kDecimalBits) + dec_fixed; }

  bool operator==(const BiasParts&) const = default;
};

// Splits bias `w` under amortization factor `lambda`. Requires w >= 0 and
// w * lambda < 2^52. Values whose fraction rounds up to 1.0 carry into the
// integer part, so dec_fixed < 2^32 always holds.
inline BiasParts SplitBias(double w, double lambda) {
  const double scaled = w * lambda;
  BiasParts parts;
  const double ip = std::floor(scaled);
  parts.int_bits = static_cast<uint64_t>(ip);
  const double frac = scaled - ip;
  uint64_t dec = static_cast<uint64_t>(
      std::llround(frac * static_cast<double>(kDecimalOne)));
  if (dec >= kDecimalOne) {
    dec = 0;
    ++parts.int_bits;
  }
  parts.dec_fixed = static_cast<uint32_t>(dec);
  return parts;
}

// The paper's t = popc(w): how many radix groups this bias occupies.
inline int NumGroupsOf(const BiasParts& parts) {
  return util::Popcount(parts.int_bits);
}

// Highest active radix position of a bias, or -1 if the integer part is 0.
inline int HighestGroupOf(const BiasParts& parts) {
  return parts.int_bits == 0 ? -1 : util::HighestBit(parts.int_bits);
}

// W(p_k) as a double, for inter-group alias construction: 2^k * count.
inline double GroupWeight(int k, uint64_t count) {
  return std::ldexp(static_cast<double>(count), k);
}

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_RADIX_H_
