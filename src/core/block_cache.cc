#include "src/core/block_cache.h"

#include <algorithm>

namespace bingo::core {

BlockCache::BlockCache(const graph::CsrMmap* csr, BlockCacheOptions options)
    : csr_(csr),
      options_(options),
      num_blocks_(csr->NumBlocks()),
      resident_(num_blocks_),
      parked_(num_blocks_) {
  util::MutexLock lock(mutex_);
  states_.assign(num_blocks_, BlockState::kInactive);
  handles_.assign(num_blocks_, graph::CsrMapHandle{});
  crc_checked_.assign(num_blocks_, 0);
}

BlockCache::~BlockCache() {
  util::MutexLock lock(mutex_);
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    if (states_[b] != BlockState::kInactive) {
      graph::CsrMmap::Unmap(handles_[b]);
    }
  }
}

int64_t BlockCache::PickEvictionLocked() const {
  int64_t victim = -1;
  uint64_t victim_parked = 0;
  bool victim_used = false;
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    if (states_[b] != BlockState::kActive && states_[b] != BlockState::kUsed) {
      continue;  // INACTIVE has nothing to evict; USING is pinned
    }
    const uint64_t parked = parked_[b].load(std::memory_order_relaxed);
    const bool used = states_[b] == BlockState::kUsed;
    // Rank: fewest parked walkers first; USED before ACTIVE; lowest id.
    if (victim < 0 || parked < victim_parked ||
        (parked == victim_parked && used && !victim_used)) {
      victim = b;
      victim_parked = parked;
      victim_used = used;
    }
  }
  return victim;
}

void BlockCache::EvictLocked(uint32_t b) {
  resident_[b].store(nullptr, std::memory_order_release);
  stats_.resident_bytes -= handles_[b].length;
  graph::CsrMmap::Unmap(handles_[b]);
  handles_[b] = graph::CsrMapHandle{};
  states_[b] = BlockState::kInactive;
  ++stats_.evictions;
}

bool BlockCache::Load(uint32_t b, std::string* error) {
  util::MutexLock lock(mutex_);
  if (states_[b] != BlockState::kInactive) {
    ++stats_.hits;
    if (states_[b] == BlockState::kUsed) {
      states_[b] = BlockState::kActive;  // new scheduling round
    }
    return true;
  }
  // Estimate before mapping (actual mapped length adds sub-page slop).
  const std::size_t incoming = csr_->BlockPayloadBytes(b);
  if (Budgeted()) {
    bool overshot = false;
    while (stats_.resident_bytes + incoming > options_.budget_bytes) {
      const int64_t victim = PickEvictionLocked();
      if (victim < 0) {
        overshot = true;  // everything resident is pinned: admit anyway
        break;
      }
      EvictLocked(static_cast<uint32_t>(victim));
    }
    if (overshot ||
        (stats_.resident_bytes == 0 && incoming > options_.budget_bytes)) {
      ++stats_.budget_overshoots;
    }
  }
  graph::CsrMapHandle handle;
  const graph::Edge* edges = nullptr;
  const bool verify = options_.verify_crc && crc_checked_[b] == 0;
  if (!csr_->MapBlock(b, verify, &handle, &edges, error)) {
    ++stats_.crc_failures;
    return false;
  }
  crc_checked_[b] = 1;
  handles_[b] = handle;
  states_[b] = BlockState::kActive;
  stats_.resident_bytes += handle.length;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  ++stats_.loads;
  resident_[b].store(edges, std::memory_order_release);
  return true;
}

void BlockCache::BeginUse(uint32_t b) {
  util::MutexLock lock(mutex_);
  if (states_[b] == BlockState::kActive || states_[b] == BlockState::kUsed) {
    states_[b] = BlockState::kUsing;
  }
}

void BlockCache::EndUse(uint32_t b) {
  util::MutexLock lock(mutex_);
  if (states_[b] == BlockState::kUsing) {
    states_[b] = BlockState::kUsed;
  }
}

int64_t BlockCache::PickNext() const {
  int64_t best = -1;
  uint64_t best_parked = 0;
  bool best_resident = false;
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    const uint64_t parked = parked_[b].load(std::memory_order_relaxed);
    if (parked == 0) {
      continue;
    }
    const bool resident =
        resident_[b].load(std::memory_order_relaxed) != nullptr;
    if (best < 0 || parked > best_parked ||
        (parked == best_parked && resident && !best_resident)) {
      best = b;
      best_parked = parked;
      best_resident = resident;
    }
  }
  return best;
}

BlockState BlockCache::State(uint32_t b) const {
  util::MutexLock lock(mutex_);
  return states_[b];
}

BlockCacheStats BlockCache::Stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::string BlockCache::CheckAccounting() const {
  util::MutexLock lock(mutex_);
  std::size_t mapped = 0;
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    const bool has_state = states_[b] != BlockState::kInactive;
    const bool has_handle = handles_[b].addr != nullptr;
    const bool has_ptr =
        resident_[b].load(std::memory_order_relaxed) != nullptr;
    if (has_ptr && !has_state) {
      return "block cache: resident pointer without a mapped state";
    }
    if (has_handle && !has_state) {
      return "block cache: live mapping in INACTIVE state";
    }
    if (has_state && csr_->BlockPayloadBytes(b) > 0 &&
        (!has_handle || !has_ptr)) {
      return "block cache: resident block lost its mapping or pointer";
    }
    mapped += handles_[b].length;
  }
  if (mapped != stats_.resident_bytes) {
    return "block cache: resident byte accounting diverged from mappings";
  }
  return "";
}

}  // namespace bingo::core
