// Amortization-factor (lambda) selection for floating-point biases (§4.3,
// §4.4).
//
// The paper chooses lambda "empirically" such that the decimal group's
// share of the total mass satisfies W_D / (W_I + W_D) < 1/d, which keeps
// hierarchical sampling O(1) even when the intra-decimal sampler is
// rejection-based (the Fig 7 example picks lambda = 10, giving a decimal
// share of 1/16 < 1/3). This helper automates that choice from a sample of
// biases and the average degree.

#ifndef BINGO_SRC_CORE_LAMBDA_H_
#define BINGO_SRC_CORE_LAMBDA_H_

#include <span>

namespace bingo::core {

struct LambdaChoice {
  double lambda = 1.0;
  double decimal_share = 0.0;  // W_D / (W_I + W_D) at this lambda
};

// Computes W_D / (W_I + W_D) for the given biases under `lambda`.
double DecimalShare(std::span<const double> biases, double lambda);

// Smallest power-of-two lambda (starting at 1) whose decimal share is below
// `target_share`. `target_share` is typically 1 / average_degree. Scaled
// biases must stay below 2^52 (see radix.h); the search caps lambda
// accordingly and returns the best achievable choice.
LambdaChoice SuggestLambda(std::span<const double> biases, double target_share);

}  // namespace bingo::core

#endif  // BINGO_SRC_CORE_LAMBDA_H_
