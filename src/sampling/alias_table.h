// Alias method (Vose construction) — §2.3(b) of the paper.
//
// O(d) construction, O(1) sampling. This is both the classical baseline
// (KnightKing's static sampler, which rebuilds a vertex's table on every
// update) and the building block of Bingo's *inter-group* sampling space,
// where d is replaced by the number of radix groups K.

#ifndef BINGO_SRC_SAMPLING_ALIAS_TABLE_H_
#define BINGO_SRC_SAMPLING_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"

namespace bingo::sampling {

class AliasTable {
 public:
  AliasTable() = default;

  // Builds the table for (possibly zero) nonnegative weights. O(n).
  void Build(std::span<const double> weights);

  // Draws an index with probability weight[i] / sum(weights). The table must
  // have at least one positive weight.
  uint32_t Sample(util::Rng& rng) const;

  // Batched draws: out[i] is exactly what Sample(*rngs[i]) would return,
  // with each walker's two variates (bucket, acceptance) drawn from its own
  // stream in Sample's order — then whole lanes are resolved through the
  // SIMD batch kernel. Bit-identical to per-walker Sample calls for any n.
  void SampleBatch(util::Rng* const* rngs, std::size_t n, uint32_t* out) const;

  // Raw table views for the batch kernels (src/sampling/batch_kernels.h).
  std::span<const double> Probs() const { return prob_; }
  std::span<const uint32_t> Aliases() const { return alias_; }

  std::size_t Size() const { return prob_.size(); }
  bool Empty() const { return prob_.empty(); }
  double TotalWeight() const { return total_weight_; }

  // Exactly reconstructs the probability each index receives from the built
  // table (sum of its own bucket share plus alias shares). Used by tests to
  // verify correctness without sampling noise.
  std::vector<double> ImpliedProbabilities() const;

  std::size_t MemoryBytes() const {
    return prob_.capacity() * sizeof(double) + alias_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<double> prob_;     // acceptance threshold per bucket, in [0,1]
  std::vector<uint32_t> alias_;  // alias target per bucket
  double total_weight_ = 0.0;
};

}  // namespace bingo::sampling

#endif  // BINGO_SRC_SAMPLING_ALIAS_TABLE_H_
