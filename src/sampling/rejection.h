// Rejection sampling — §2.3(d) of the paper.
//
// Keeps only the weights and their maximum: pick a candidate uniformly,
// accept with probability w_i / max(w). Expected cost O(d·max(w) / sum(w)),
// which degrades under skew — the reason the paper rejects it as a general
// dynamic sampler, and the reason Bingo's dense-group fallback (which uses
// rejection *within* a radix group, §5.1) caps the rejection ratio at
// 1 - alpha%.

#ifndef BINGO_SRC_SAMPLING_REJECTION_H_
#define BINGO_SRC_SAMPLING_REJECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"

namespace bingo::sampling {

class RejectionSampler {
 public:
  RejectionSampler() = default;

  void Build(std::span<const double> weights);

  // O(1) append.
  void Append(double weight);

  // Swap-with-tail removal; O(1) unless the maximum must be recomputed
  // (removed weight was the unique max), which is O(d).
  void RemoveAt(uint32_t index);

  uint32_t Sample(util::Rng& rng) const;

  std::size_t Size() const { return weights_.size(); }
  double MaxWeight() const { return max_weight_; }
  double TotalWeight() const { return total_weight_; }

  // Expected number of trials per sample: d * max / total.
  double ExpectedTrials() const;

  std::size_t MemoryBytes() const { return weights_.capacity() * sizeof(double); }

 private:
  void RecomputeAggregates();

  std::vector<double> weights_;
  double max_weight_ = 0.0;
  double total_weight_ = 0.0;
};

}  // namespace bingo::sampling

#endif  // BINGO_SRC_SAMPLING_REJECTION_H_
