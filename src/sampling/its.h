// Inverse Transform Sampling — §2.3(c) of the paper.
//
// Maintains the prefix-sum (CDF) array C with c_i = sum_{j<=i} w_j.
// Sampling draws x ~ U[0, c_{d-1}) and binary-searches the interval:
// O(log d). Construction is O(d); appending one weight is O(1) (this is why
// the paper's Table 1 lists ITS insertion as O(1)); deletion requires an
// O(d) rebuild of the suffix. This sampler is the core of the gSampler-like
// baseline (substitution S3).

#ifndef BINGO_SRC_SAMPLING_ITS_H_
#define BINGO_SRC_SAMPLING_ITS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"

namespace bingo::sampling {

class ItsSampler {
 public:
  ItsSampler() = default;

  void Build(std::span<const double> weights);

  // O(1) append of one weight.
  void Append(double weight);

  // O(d - index) removal: rewrites the suffix of the CDF.
  void RemoveAt(uint32_t index);

  // Draws an index with probability w_i / total. Requires TotalWeight() > 0.
  uint32_t Sample(util::Rng& rng) const;

  // Batched draws: out[i] is exactly what Sample(*rngs[i]) would return —
  // each walker draws its own variate, then whole lanes binary-search the
  // CDF through the SIMD batch kernel. Bit-identical to per-walker Sample.
  void SampleBatch(util::Rng* const* rngs, std::size_t n, uint32_t* out) const;

  // Raw CDF view for the batch kernels (src/sampling/batch_kernels.h).
  std::span<const double> Cdf() const { return cdf_; }

  std::size_t Size() const { return cdf_.size(); }
  double TotalWeight() const { return cdf_.empty() ? 0.0 : cdf_.back(); }

  // Weight of entry i, recovered from the CDF.
  double WeightAt(uint32_t index) const {
    return index == 0 ? cdf_[0] : cdf_[index] - cdf_[index - 1];
  }

  std::vector<double> ImpliedProbabilities() const;

  std::size_t MemoryBytes() const { return cdf_.capacity() * sizeof(double); }

 private:
  std::vector<double> cdf_;
};

}  // namespace bingo::sampling

#endif  // BINGO_SRC_SAMPLING_ITS_H_
