// Weighted reservoir selection — FlowWalker's sampling primitive
// (substitution S3 in DESIGN.md).
//
// FlowWalker keeps no auxiliary per-vertex structure at all: each walk step
// scans the neighbor biases once and keeps a running weighted choice
// ("reservoir" of size one). That makes updates free (the graph itself is
// the structure) but every sample O(d) — the exact trade-off Fig 16
// measures against Bingo.

#ifndef BINGO_SRC_SAMPLING_RESERVOIR_H_
#define BINGO_SRC_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <span>

#include "src/util/rng.h"

namespace bingo::sampling {

// Returns an index drawn with probability weights[i]/sum(weights) using a
// single streaming pass (chain rule: replace the running pick with item i
// with probability w_i / sum_{j<=i} w_j). Returns UINT32_MAX if all weights
// are zero.
uint32_t WeightedReservoirPick(std::span<const double> weights, util::Rng& rng);

// Same, but reads weights through an accessor (used to stream directly over
// adjacency arrays without materializing a weight vector).
template <typename WeightFn>
uint32_t WeightedReservoirPickFn(uint32_t count, WeightFn&& weight_of,
                                 util::Rng& rng) {
  double running = 0.0;
  uint32_t pick = 0xFFFFFFFFu;
  for (uint32_t i = 0; i < count; ++i) {
    const double w = weight_of(i);
    if (w <= 0.0) {
      continue;
    }
    running += w;
    if (running == w || rng.NextUnit() * running < w) {
      pick = i;
    }
  }
  return pick;
}

}  // namespace bingo::sampling

#endif  // BINGO_SRC_SAMPLING_RESERVOIR_H_
