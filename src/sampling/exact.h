// Ground-truth helpers for sampler validation.

#ifndef BINGO_SRC_SAMPLING_EXACT_H_
#define BINGO_SRC_SAMPLING_EXACT_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bingo::sampling {

// Draws `num_samples` outcomes from `sample_fn()` (which must return an
// index < num_outcomes) and returns the per-outcome counts.
template <typename SampleFn>
std::vector<uint64_t> Histogram(std::size_t num_outcomes, uint64_t num_samples,
                                SampleFn&& sample_fn) {
  std::vector<uint64_t> counts(num_outcomes, 0);
  for (uint64_t s = 0; s < num_samples; ++s) {
    ++counts[sample_fn()];
  }
  return counts;
}

}  // namespace bingo::sampling

#endif  // BINGO_SRC_SAMPLING_EXACT_H_
