#include "src/sampling/reservoir.h"

namespace bingo::sampling {

uint32_t WeightedReservoirPick(std::span<const double> weights, util::Rng& rng) {
  return WeightedReservoirPickFn(
      static_cast<uint32_t>(weights.size()),
      [&weights](uint32_t i) { return weights[i]; }, rng);
}

}  // namespace bingo::sampling
