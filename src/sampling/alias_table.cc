#include "src/sampling/alias_table.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/sampling/batch_kernels.h"

namespace bingo::sampling {

void AliasTable::Build(std::span<const double> weights) {
  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  total_weight_ = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (n == 0 || total_weight_ <= 0.0) {
    total_weight_ = 0.0;
    return;
  }

  // Vose's algorithm: scale weights so the average bucket volume is 1, then
  // pair each under-full bucket with an over-full donor. Scratch buffers are
  // thread-local: Build runs on every streaming update (the inter-group
  // rebuild of §4.2), so per-call allocations would dominate small tables.
  static thread_local std::vector<double> scaled;
  static thread_local std::vector<uint32_t> small;
  static thread_local std::vector<uint32_t> large;
  scaled.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total_weight_;
  }
  small.clear();
  large.clear();
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are numerically-full buckets.
  for (uint32_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (uint32_t s : small) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
}

uint32_t AliasTable::Sample(util::Rng& rng) const {
  assert(!prob_.empty() && total_weight_ > 0.0);
  const uint32_t bucket = static_cast<uint32_t>(rng.NextBounded(prob_.size()));
  return rng.NextUnit() < prob_[bucket] ? bucket : alias_[bucket];
}

void AliasTable::SampleBatch(util::Rng* const* rngs, std::size_t n,
                             uint32_t* out) const {
  assert(!prob_.empty() && total_weight_ > 0.0);
  constexpr std::size_t kTile = 64;
  uint32_t slots[kTile];
  double units[kTile];
  for (std::size_t begin = 0; begin < n; begin += kTile) {
    const std::size_t count = std::min(kTile, n - begin);
    // Per-walker variates first, in Sample's draw order (bucket then
    // acceptance) from each walker's own stream; the kernel then resolves
    // all lanes without touching any RNG.
    for (std::size_t i = 0; i < count; ++i) {
      util::Rng& rng = *rngs[begin + i];
      slots[i] = static_cast<uint32_t>(rng.NextBounded(prob_.size()));
      units[i] = rng.NextUnit();
    }
    AliasResolveBatch(prob_, alias_, slots, units, out + begin, count);
  }
}

std::vector<double> AliasTable::ImpliedProbabilities() const {
  std::vector<double> probs(prob_.size(), 0.0);
  if (prob_.empty() || total_weight_ <= 0.0) {
    return probs;
  }
  const double bucket_mass = 1.0 / static_cast<double>(prob_.size());
  for (std::size_t i = 0; i < prob_.size(); ++i) {
    probs[i] += bucket_mass * prob_[i];
    probs[alias_[i]] += bucket_mass * (1.0 - prob_[i]);
  }
  return probs;
}

}  // namespace bingo::sampling
