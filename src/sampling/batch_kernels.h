// Structure-of-arrays batch kernels for the per-step sampling hot path.
//
// The fused walk driver advances many walkers through one vertex's sampling
// structure per step; these kernels resolve whole lanes of draws at once
// instead of one table lookup per walker. Each kernel has two
// implementations selected at runtime (util::ActiveSimdLevel()):
//
//   * a portable scalar path, and
//   * an AVX2 path (gathers + compares + blends) compiled with per-function
//     target attributes so the library itself stays baseline-ISA.
//
// BIT-IDENTITY CONTRACT: for identical inputs both paths produce identical
// outputs. Every kernel is pure compare/select/integer arithmetic on values
// the caller already drew — no floating-point operation whose result could
// differ between paths (gather+compare+blend is exact; the branchless
// binary search computes the same mathematically-unique upper_bound index
// as std::upper_bound; the SplitBias batch reproduces the scalar rounding,
// carry included, via exact power-of-two scaling). The determinism matrix
// therefore holds across CPUs: a walk served on an AVX2 machine equals the
// same walk served on a scalar one, bit for bit.
//
// RNG DISCIPLINE: kernels never draw variates. Callers draw each walker's
// variates from that walker's own stream, in the same per-walker order the
// scalar sampler uses, then hand the SoA arrays here — so interleaving
// walkers across lanes can never change any single walker's variate
// sequence (the engine's determinism contract).

#ifndef BINGO_SRC_SAMPLING_BATCH_KERNELS_H_
#define BINGO_SRC_SAMPLING_BATCH_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace bingo::sampling {

// Alias-table resolution: out[i] = units[i] < prob[slots[i]]
//                                      ? slots[i] : alias[slots[i]].
// `slots` are pre-drawn bucket indices (NextBounded), `units` the pre-drawn
// acceptance variates (NextUnit) — exactly AliasTable::Sample's two draws.
void AliasResolveBatch(std::span<const double> prob,
                       std::span<const uint32_t> alias, const uint32_t* slots,
                       const double* units, uint32_t* out, std::size_t n);

// ITS search: out[i] = min(upper_bound(cdf, xs[i]) - cdf.begin(),
//                          cdf.size() - 1), the exact ItsSampler::Sample
// lookup. xs are pre-drawn (NextUnit * cdf.back()). cdf must be non-empty
// and sorted ascending.
void ItsSearchBatch(std::span<const double> cdf, const double* xs,
                    uint32_t* out, std::size_t n);

// Radix decomposition: out[i] = core::SplitBias(biases[i], lambda).int_bits
// (including the fraction-rounds-up-to-one carry). Feeds the dense-group
// rejection test ((int_bits >> k) & 1) for whole lanes of candidates.
void SplitBiasIntBatch(const double* biases, std::size_t n, double lambda,
                       uint64_t* out);

// Fixed-variant entry points, exposed so tests can pin AVX2 == scalar on
// identical inputs and the microbench can time both on one machine. The
// dispatching functions above are what production code calls.
namespace detail {
void AliasResolveBatchScalar(std::span<const double> prob,
                             std::span<const uint32_t> alias,
                             const uint32_t* slots, const double* units,
                             uint32_t* out, std::size_t n);
void ItsSearchBatchScalar(std::span<const double> cdf, const double* xs,
                          uint32_t* out, std::size_t n);
void SplitBiasIntBatchScalar(const double* biases, std::size_t n,
                             double lambda, uint64_t* out);
#if defined(__x86_64__)
void AliasResolveBatchAvx2(std::span<const double> prob,
                           std::span<const uint32_t> alias,
                           const uint32_t* slots, const double* units,
                           uint32_t* out, std::size_t n);
void ItsSearchBatchAvx2(std::span<const double> cdf, const double* xs,
                        uint32_t* out, std::size_t n);
void SplitBiasIntBatchAvx2(const double* biases, std::size_t n, double lambda,
                           uint64_t* out);
#endif
}  // namespace detail

}  // namespace bingo::sampling

#endif  // BINGO_SRC_SAMPLING_BATCH_KERNELS_H_
