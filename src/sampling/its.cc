#include "src/sampling/its.h"

#include <algorithm>
#include <cassert>

#include "src/sampling/batch_kernels.h"

namespace bingo::sampling {

void ItsSampler::Build(std::span<const double> weights) {
  cdf_.resize(weights.size());
  double running = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    running += weights[i];
    cdf_[i] = running;
  }
}

void ItsSampler::Append(double weight) {
  cdf_.push_back(TotalWeight() + weight);
}

void ItsSampler::RemoveAt(uint32_t index) {
  assert(index < cdf_.size());
  const double removed = WeightAt(index);
  for (std::size_t i = index; i + 1 < cdf_.size(); ++i) {
    cdf_[i] = cdf_[i + 1] - removed;
  }
  cdf_.pop_back();
}

uint32_t ItsSampler::Sample(util::Rng& rng) const {
  assert(!cdf_.empty() && cdf_.back() > 0.0);
  const double x = rng.NextUnit() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<uint32_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

void ItsSampler::SampleBatch(util::Rng* const* rngs, std::size_t n,
                             uint32_t* out) const {
  assert(!cdf_.empty() && cdf_.back() > 0.0);
  constexpr std::size_t kTile = 64;
  double xs[kTile];
  const double total = cdf_.back();
  for (std::size_t begin = 0; begin < n; begin += kTile) {
    const std::size_t count = std::min(kTile, n - begin);
    for (std::size_t i = 0; i < count; ++i) {
      xs[i] = rngs[begin + i]->NextUnit() * total;
    }
    ItsSearchBatch(cdf_, xs, out + begin, count);
  }
}

std::vector<double> ItsSampler::ImpliedProbabilities() const {
  std::vector<double> probs(cdf_.size(), 0.0);
  const double total = TotalWeight();
  if (total <= 0.0) {
    return probs;
  }
  for (uint32_t i = 0; i < cdf_.size(); ++i) {
    probs[i] = WeightAt(i) / total;
  }
  return probs;
}

}  // namespace bingo::sampling
