#include "src/sampling/rejection.h"

#include <algorithm>
#include <cassert>

namespace bingo::sampling {

void RejectionSampler::Build(std::span<const double> weights) {
  weights_.assign(weights.begin(), weights.end());
  RecomputeAggregates();
}

void RejectionSampler::RecomputeAggregates() {
  max_weight_ = 0.0;
  total_weight_ = 0.0;
  for (double w : weights_) {
    max_weight_ = std::max(max_weight_, w);
    total_weight_ += w;
  }
}

void RejectionSampler::Append(double weight) {
  weights_.push_back(weight);
  max_weight_ = std::max(max_weight_, weight);
  total_weight_ += weight;
}

void RejectionSampler::RemoveAt(uint32_t index) {
  assert(index < weights_.size());
  const double removed = weights_[index];
  weights_[index] = weights_.back();
  weights_.pop_back();
  total_weight_ -= removed;
  if (removed >= max_weight_) {
    RecomputeAggregates();
  }
}

uint32_t RejectionSampler::Sample(util::Rng& rng) const {
  assert(!weights_.empty() && max_weight_ > 0.0);
  for (;;) {
    const uint32_t candidate = static_cast<uint32_t>(rng.NextBounded(weights_.size()));
    if (rng.NextUnit() * max_weight_ < weights_[candidate]) {
      return candidate;
    }
  }
}

double RejectionSampler::ExpectedTrials() const {
  if (total_weight_ <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(weights_.size()) * max_weight_ / total_weight_;
}

}  // namespace bingo::sampling
