#include "src/sampling/batch_kernels.h"

#include <algorithm>

#include "src/core/radix.h"
#include "src/util/cpu_features.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace bingo::sampling {
namespace detail {

void AliasResolveBatchScalar(std::span<const double> prob,
                             std::span<const uint32_t> alias,
                             const uint32_t* slots, const double* units,
                             uint32_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const uint32_t slot = slots[i];
    out[i] = units[i] < prob[slot] ? slot : alias[slot];
  }
}

void ItsSearchBatchScalar(std::span<const double> cdf, const double* xs,
                          uint32_t* out, std::size_t n) {
  const std::size_t size = cdf.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), xs[i]);
    out[i] = static_cast<uint32_t>(
        std::min<std::size_t>(static_cast<std::size_t>(it - cdf.begin()),
                              size - 1));
  }
}

void SplitBiasIntBatchScalar(const double* biases, std::size_t n,
                             double lambda, uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = core::SplitBias(biases[i], lambda).int_bits;
  }
}

#if defined(__x86_64__)

__attribute__((target("avx2"))) void AliasResolveBatchAvx2(
    std::span<const double> prob, std::span<const uint32_t> alias,
    const uint32_t* slots, const double* units, uint32_t* out, std::size_t n) {
  const double* prob_base = prob.data();
  const int* alias_base = reinterpret_cast<const int*>(alias.data());
  // Lane compaction: take dword 0 of each 64-bit compare mask.
  const __m256i take_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i slots4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + i));
    const __m256d prob4 = _mm256_i32gather_pd(prob_base, slots4, 8);
    const __m256d units4 = _mm256_loadu_pd(units + i);
    // units < prob: identical semantics to the scalar `<` (no NaNs here:
    // prob entries are in [0, 1] and units in [0, 1)).
    const __m256d accept = _mm256_cmp_pd(units4, prob4, _CMP_LT_OQ);
    const __m128i alias4 = _mm_i32gather_epi32(alias_base, slots4, 4);
    const __m128i accept32 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(accept), take_even));
    const __m128i result = _mm_blendv_epi8(alias4, slots4, accept32);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), result);
  }
  if (i < n) {
    AliasResolveBatchScalar(prob, alias, slots + i, units + i, out + i, n - i);
  }
}

__attribute__((target("avx2"))) void ItsSearchBatchAvx2(
    std::span<const double> cdf, const double* xs, uint32_t* out,
    std::size_t n) {
  const double* cdf_base = cdf.data();
  const std::size_t size = cdf.size();
  const __m256i take_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i size_v = _mm256_set1_epi64x(static_cast<long long>(size));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x4 = _mm256_loadu_pd(xs + i);
    // Uniform-length branchless binary search: every lane takes the same
    // probe schedule (a pure function of `size`), so the lanes stay in
    // lockstep. Invariant: the upper_bound index lies in [base, base+len],
    // and probes stay within [0, size).
    __m256i base = _mm256_setzero_si256();
    std::size_t len = size;
    while (len > 1) {
      const std::size_t half = len >> 1;
      const __m256i probe = _mm256_add_epi64(
          base, _mm256_set1_epi64x(static_cast<long long>(half - 1)));
      const __m256d values = _mm256_i64gather_pd(cdf_base, probe, 8);
      // cdf[probe] <= x  =>  the first index with cdf > x is right of the
      // probe: advance base by half. Matches std::upper_bound's ordering
      // (result = count of elements <= x) exactly.
      const __m256d le = _mm256_cmp_pd(values, x4, _CMP_LE_OQ);
      base = _mm256_add_epi64(
          base, _mm256_and_si256(_mm256_castpd_si256(le),
                                 _mm256_set1_epi64x(static_cast<long long>(half))));
      len -= half;
    }
    const __m256d last = _mm256_i64gather_pd(cdf_base, base, 8);
    const __m256d le = _mm256_cmp_pd(last, x4, _CMP_LE_OQ);
    base = _mm256_sub_epi64(base, _mm256_castpd_si256(le));  // mask is -1
    // Clamp base == size to size-1 (x at/above the CDF total).
    const __m256i at_end = _mm256_cmpeq_epi64(base, size_v);
    base = _mm256_sub_epi64(base, _mm256_and_si256(at_end, one));
    const __m128i out4 = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(base, take_even));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), out4);
  }
  if (i < n) {
    ItsSearchBatchScalar(cdf, xs + i, out + i, n - i);
  }
}

__attribute__((target("avx2"))) void SplitBiasIntBatchAvx2(
    const double* biases, std::size_t n, double lambda, uint64_t* out) {
  const __m256d lambda4 = _mm256_set1_pd(lambda);
  // Integer extraction for ip in [0, 2^52): (ip + 2^52) has ip in its
  // mantissa bits; reinterpreting and subtracting 2^52's bit pattern yields
  // the exact integer.
  const __m256d magic = _mm256_set1_pd(0x1.0p52);
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  // llround(frac * 2^32) >= 2^32  <=>  frac >= 1 - 2^-33 (frac * 2^32 is an
  // exact power-of-two scaling, and llround ties away from zero) — the
  // scalar SplitBias carry, as an exact compare.
  const __m256d carry_threshold = _mm256_set1_pd(1.0 - 0x1.0p-33);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d w4 = _mm256_loadu_pd(biases + i);
    const __m256d scaled = _mm256_mul_pd(w4, lambda4);
    const __m256d ip =
        _mm256_round_pd(scaled, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
    const __m256d frac = _mm256_sub_pd(scaled, ip);  // exact (Sterbenz)
    __m256i bits = _mm256_sub_epi64(
        _mm256_castpd_si256(_mm256_add_pd(ip, magic)), magic_bits);
    const __m256d carry = _mm256_cmp_pd(frac, carry_threshold, _CMP_GE_OQ);
    bits = _mm256_sub_epi64(bits, _mm256_castpd_si256(carry));  // -(-1) = +1
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bits);
  }
  if (i < n) {
    SplitBiasIntBatchScalar(biases + i, n - i, lambda, out + i);
  }
}

#endif  // defined(__x86_64__)

}  // namespace detail

void AliasResolveBatch(std::span<const double> prob,
                       std::span<const uint32_t> alias, const uint32_t* slots,
                       const double* units, uint32_t* out, std::size_t n) {
#if defined(__x86_64__)
  if (util::ActiveSimdLevel() == util::SimdLevel::kAvx2) {
    detail::AliasResolveBatchAvx2(prob, alias, slots, units, out, n);
    return;
  }
#endif
  detail::AliasResolveBatchScalar(prob, alias, slots, units, out, n);
}

void ItsSearchBatch(std::span<const double> cdf, const double* xs,
                    uint32_t* out, std::size_t n) {
#if defined(__x86_64__)
  if (util::ActiveSimdLevel() == util::SimdLevel::kAvx2) {
    detail::ItsSearchBatchAvx2(cdf, xs, out, n);
    return;
  }
#endif
  detail::ItsSearchBatchScalar(cdf, xs, out, n);
}

void SplitBiasIntBatch(const double* biases, std::size_t n, double lambda,
                       uint64_t* out) {
#if defined(__x86_64__)
  if (util::ActiveSimdLevel() == util::SimdLevel::kAvx2) {
    detail::SplitBiasIntBatchAvx2(biases, n, lambda, out);
    return;
  }
#endif
  detail::SplitBiasIntBatchScalar(biases, n, lambda, out);
}

}  // namespace bingo::sampling
