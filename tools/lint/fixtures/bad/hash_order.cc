// expect: unordered-iteration
// Known-bad: hash-set iteration feeding (hypothetical) checkpoint bytes.
#include <cstdint>
#include <unordered_set>
#include <vector>

std::vector<uint64_t> SerializeTouched(
    const std::unordered_set<uint64_t>& touched) {
  std::vector<uint64_t> bytes;
  for (const uint64_t v : touched) {  // hash order leaks into the output
    bytes.push_back(v);
  }
  return bytes;
}
