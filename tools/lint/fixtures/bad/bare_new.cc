// expect: bare-allocation
// Known-bad: bare new in steady-state walk code (zero-alloc contract).
#include <cstdint>

uint64_t* GrowBuffer(std::size_t n) {
  return new uint64_t[n];
}
