// expect: wall-clock-time
// Reading the machine clock inside a sampling path makes the decayed bias
// depend on when the binary runs; the decay clock must be the logical epoch
// carried by AdvanceTime updates.
#include <chrono>

double DecayedBiasNow(double bias, double per_second_decay) {
  const auto now = std::chrono::system_clock::now();
  const double seconds =
      std::chrono::duration<double>(now.time_since_epoch()).count();
  return bias * per_second_decay * seconds;
}
