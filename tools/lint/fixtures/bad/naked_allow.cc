// expect: suppression
// Known-bad: a suppression without a justification is itself a finding.
#include <cstdint>

uint64_t* Grow(std::size_t n) {
  return new uint64_t[n];  // bingo-lint: allow(bare-allocation)
}
