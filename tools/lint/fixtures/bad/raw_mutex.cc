// expect: raw-sync-primitive
// Known-bad: declares a raw std::mutex outside src/util/sync.h.
#include <mutex>

struct Counter {
  std::mutex mu;
  int value = 0;
  void Bump() {
    std::lock_guard<std::mutex> lock(mu);
    ++value;
  }
};
