// expect: nondeterministic-rng
// Known-bad: entropy-seeded engine in a walk path; walks would not replay.
#include <random>

unsigned DrawStep() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return gen();
}
