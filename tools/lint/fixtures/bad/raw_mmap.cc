// expect: bare-allocation
// Known-bad: raw mmap in block-path code — mapped bytes the cache's
// resident budget cannot see.
#include <sys/mman.h>

#include <cstddef>

const void* MapWholeFile(int fd, std::size_t length) {
  return ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
}
