// expect: nondeterministic-rng
// Known-bad: time-seeded rand() — different output every run.
#include <cstdlib>
#include <ctime>

int NoisyPick(int n) {
  std::srand(static_cast<unsigned>(time(nullptr)));
  return std::rand() % n;
}
