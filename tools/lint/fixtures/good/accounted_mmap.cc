// Known-good: the one sanctioned mmap shape — the block arena itself,
// suppressed with a justification, with munmap (which the rule must not
// confuse with mmap) returning the pages on eviction.
#include <sys/mman.h>

#include <cstddef>

const void* MapAccountedBlock(int fd, std::size_t length) {
  return ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);  // bingo-lint: allow(bare-allocation) -- the block arena itself: residency is accounted by the cache and returned via munmap on eviction
}

void UnmapAccountedBlock(void* addr, std::size_t length) {
  ::munmap(addr, length);
}
