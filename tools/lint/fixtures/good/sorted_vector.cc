// Known-good: sorted+uniqued vector instead of a hash set; annotated
// wrappers instead of raw primitives; ForStream-derived RNG.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/sync.h"

struct Touched {
  bingo::util::Mutex mu;
  std::vector<uint64_t> ids BINGO_GUARDED_BY(mu);

  void Add(uint64_t v) {
    bingo::util::MutexLock lock(mu);
    ids.push_back(v);
  }
  void Seal() {
    bingo::util::MutexLock lock(mu);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
};

uint64_t Draw(uint64_t seed, uint64_t stream) {
  bingo::util::Rng rng = bingo::util::Rng::ForStream(seed, stream);
  return rng.Next();
}
