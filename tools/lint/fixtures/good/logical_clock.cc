// A sampling path that keeps time logically: the decay epoch arrives as
// data (an AdvanceTime update applied through ApplyBatch), never from the
// machine clock, so replaying the same updates reproduces the same biases.
#include <cstdint>

double DecayedBias(double bias, double decay, uint32_t age_epochs) {
  double factor = 1.0;
  double base = decay;
  for (uint32_t e = age_epochs; e != 0; e >>= 1) {
    if (e & 1) {
      factor *= base;
    }
    base *= base;
  }
  return bias * factor;
}
