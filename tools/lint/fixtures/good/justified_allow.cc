// Known-good: a suppression WITH a justification is honored; mentioning
// banned spellings inside comments or string literals is fine.
#include <cstdint>

// Comments may discuss std::mutex or rand() freely — the linter strips them.
const char* kDoc = "never call rand() in walk code";

uint64_t* ColdPathGrow(std::size_t n) {
  // One-time cold-path table build, not steady-state walk code.
  return new uint64_t[n];  // bingo-lint: allow(bare-allocation) -- one-shot startup table, freed in dtor
}
