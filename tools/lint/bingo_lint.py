#!/usr/bin/env python3
"""bingo_lint: repo-specific invariants clang-tidy cannot express.

Rules (see README "Correctness tooling"):

  raw-sync-primitive     std::mutex / std::shared_mutex / std::condition_variable
                         (and their lock guards, and the <mutex>/<shared_mutex>/
                         <condition_variable> includes) are only allowed inside
                         src/util/sync.h. Everything else must use the annotated
                         bingo::util wrappers so Clang Thread Safety Analysis
                         sees every lock in the tree.

  nondeterministic-rng   rand()/srand(), std::random_device, std::mt19937,
                         std::default_random_engine, and time-seeded RNG are
                         banned in walk paths (src/, tools/, bench/). All
                         randomness must derive from util::Rng::ForStream so
                         walk output is a pure function of (seed, stream).

  unordered-iteration    std::unordered_map / std::unordered_set are banned in
                         src/walk/ and in serialization code: iterating them
                         feeds hash order into walk output or checkpoint bytes,
                         which breaks bit-identity across libstdc++ versions
                         and ASLR seeds. Use sorted vectors (see
                         RepairAfterUpdates) or suppress with justification
                         for a provably non-iterated use.

  bare-allocation        bare `new` / `malloc` / `calloc` / `realloc` are
                         banned in src/walk/: steady-state walk code must lease
                         from the pool-backed scratch allocator (zero-alloc
                         contract, PR 5). Containers are fine; raw allocations
                         are not. The rule also covers the out-of-core block
                         path (src/core/block_cache.*, src/graph/csr_mmap.*),
                         where it additionally bans raw mmap(): every mapped
                         byte must be accounted against the cache's resident
                         budget. The one justified allow() is the mmap arena
                         in CsrMmap::MapBlock — block residency IS the product
                         there, and Unmap returns the pages on eviction.

  wall-clock-time        std::chrono::{system,steady,high_resolution}_clock,
                         time(), and gettimeofday() are banned in src/walk/
                         and src/core/: the temporal decay clock is logical
                         (AdvanceTime epochs travel through ApplyBatch and the
                         WAL), so a machine-clock read in a sampling path makes
                         walk output depend on when the binary runs. The one
                         exemption is src/walk/query_batcher.h, whose batching
                         deadlines are wall-clock by design and never feed a
                         sampling decision.

Suppression: append to the offending line
    // bingo-lint: allow(<rule>) -- <justification>
The justification is mandatory; a bare allow() is itself an error.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

# (rule, regex, message)
RAW_SYNC = [
    (re.compile(r'#\s*include\s*<(mutex|shared_mutex|condition_variable)>'),
     "include <{0}> outside src/util/sync.h; use src/util/sync.h"),
    (re.compile(r'\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|'
                r'condition_variable(?:_any)?|lock_guard|unique_lock|'
                r'shared_lock|scoped_lock)\b'),
     "raw std::{0} outside src/util/sync.h; use the annotated "
     "bingo::util wrappers"),
]

NONDET_RNG = [
    (re.compile(r'\b(?:std::)?s?rand\s*\('),
     "rand()/srand() is nondeterministic across platforms; derive from "
     "util::Rng::ForStream"),
    (re.compile(r'\bstd::random_device\b'),
     "std::random_device is entropy-seeded; derive from util::Rng::ForStream"),
    (re.compile(r'\bstd::(mt19937(?:_64)?|default_random_engine|minstd_rand0?)'
                r'\b'),
     "std::{0} bypasses the ForStream seeding discipline; use util::Rng"),
    (re.compile(r'\b(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)'),
     "time-seeded randomness breaks replay; derive from util::Rng::ForStream"),
]

UNORDERED = [
    (re.compile(r'\bstd::unordered_(map|set|multimap|multiset)\b'),
     "std::unordered_{0} in a walk/serialization path: iteration order feeds "
     "hash order into deterministic output; use a sorted vector"),
]

BARE_ALLOC = [
    (re.compile(r'\bnew\b(?!\s*\()'),  # `new T`, `new T[...]`; placement-new
                                       # (`new (ptr) T`) is pool-backed and ok
     "bare new in steady-state walk code; lease from ScratchMemory "
     "(zero-alloc contract)"),
    (re.compile(r'\b(?:std::)?(malloc|calloc|realloc)\s*\('),
     "bare {0}() in steady-state walk code; lease from ScratchMemory "
     "(zero-alloc contract)"),
    (re.compile(r'\bmmap\s*\('),
     "raw mmap() outside the accounted block arena; map blocks through "
     "core::BlockCache so residency counts against the byte budget"),
]

WALL_CLOCK = [
    (re.compile(r'\bstd::chrono::(system_clock|steady_clock|'
                r'high_resolution_clock)\b'),
     "wall-clock std::chrono::{0} in a sampling path: the decay clock is "
     "logical (AdvanceTime epochs); machine-clock reads make walk output "
     "depend on when the binary runs"),
    (re.compile(r'\b(?:std::)?time\s*\('),
     "time() in a sampling path: advance the logical epoch via "
     "graph::MakeAdvanceTime instead of reading the machine clock"),
    (re.compile(r'\bgettimeofday\s*\('),
     "gettimeofday() in a sampling path: the decay clock is logical "
     "(AdvanceTime epochs); use graph::MakeAdvanceTime"),
]

ALLOW = re.compile(r'//\s*bingo-lint:\s*allow\(([a-z-]+)\)\s*(--\s*\S.*)?')

COMMENT_OR_STRING = re.compile(
    r'//[^\n]*|/\*.*?\*/|"(?:\\.|[^"\\])*"|\'(?:\\.|[^\'\\])*\'', re.S)


def strip_code(text):
    """Blanks comments and string literals, preserving line structure."""
    def blank(m):
        return re.sub(r'[^\n]', ' ', m.group(0))
    return COMMENT_OR_STRING.sub(blank, text)


def rules_for(rel):
    """Returns the [(rule_name, checks)] that apply to a repo-relative path."""
    posix = rel.as_posix()
    if posix == 'src/util/sync.h':
        return []
    applicable = [('raw-sync-primitive', RAW_SYNC)]
    if posix.startswith(('src/', 'tools/', 'bench/')):
        applicable.append(('nondeterministic-rng', NONDET_RNG))
    if posix.startswith('src/walk/') or posix.endswith('serial.h'):
        applicable.append(('unordered-iteration', UNORDERED))
    # The zero-alloc contract extends to the out-of-core block path: the
    # cache and the CSR container are on the steady-state walk path, and
    # an unaccounted mmap there is an allocation the budget cannot see.
    if posix.startswith('src/walk/') or posix in (
            'src/core/block_cache.h', 'src/core/block_cache.cc',
            'src/graph/csr_mmap.h', 'src/graph/csr_mmap.cc'):
        applicable.append(('bare-allocation', BARE_ALLOC))
    # query_batcher's admission deadlines are wall-clock by design (they
    # bound queueing latency, never a sampling decision), mirroring the
    # sync.h whole-file exemption above.
    if (posix.startswith(('src/walk/', 'src/core/'))
            and posix != 'src/walk/query_batcher.h'):
        applicable.append(('wall-clock-time', WALL_CLOCK))
    return applicable


def lint_file(path, rel, findings):
    try:
        raw = path.read_text(encoding='utf-8', errors='replace')
    except OSError as e:
        findings.append((rel, 0, 'io', str(e)))
        return
    applicable = rules_for(rel)
    if not applicable:
        return
    code_lines = strip_code(raw).splitlines()
    raw_lines = raw.splitlines()
    for lineno, (code, orig) in enumerate(zip(code_lines, raw_lines), 1):
        allow = ALLOW.search(orig)
        allowed_rule = None
        if allow:
            allowed_rule, justification = allow.group(1), allow.group(2)
            if not justification:
                findings.append((rel, lineno, 'suppression',
                                 'bingo-lint: allow() without a justification '
                                 '("-- <why>") is itself a finding'))
                allowed_rule = None
        for rule, checks in applicable:
            for pattern, message in checks:
                m = pattern.search(code)
                if not m:
                    continue
                if allowed_rule == rule:
                    continue
                detail = message.format(*(m.groups() or ()))
                findings.append((rel, lineno, rule, detail))


def iter_sources(roots):
    exts = {'.h', '.hpp', '.cc', '.cpp', '.cxx'}
    for root in roots:
        base = REPO / root
        if not base.exists():
            continue
        for path in sorted(base.rglob('*')):
            if path.suffix not in exts:
                continue
            rel = path.relative_to(REPO)
            posix = rel.as_posix()
            # Lint fodder: fixtures are known-bad on purpose, and the
            # negative-compile cases violate annotations on purpose.
            if posix.startswith(('tools/lint/fixtures/', 'tests/static_analysis/')):
                continue
            yield path, rel


def run_lint(roots):
    findings = []
    for path, rel in iter_sources(roots):
        lint_file(path, rel, findings)
    for rel, lineno, rule, detail in findings:
        print(f'{rel}:{lineno}: [{rule}] {detail}')
    return findings


def self_test():
    """Known-bad fixtures must each be flagged; known-good must be clean."""
    fixtures = REPO / 'tools' / 'lint' / 'fixtures'
    failures = []
    for path in sorted((fixtures / 'bad').glob('*.cc')):
        # Fixtures declare the rule they violate in their first line:
        #   // expect: <rule>
        first = path.read_text(encoding='utf-8').splitlines()[0]
        m = re.match(r'//\s*expect:\s*([a-z-]+)', first)
        if not m:
            failures.append(f'{path.name}: missing "// expect: <rule>" header')
            continue
        expected = m.group(1)
        findings = []
        # Fixtures emulate walk-path files so every rule is in scope.
        lint_file(path, pathlib.PurePosixPath(f'src/walk/{path.name}'),
                  findings)
        if not any(rule == expected for _, _, rule, _ in findings):
            failures.append(
                f'{path.name}: expected a [{expected}] finding, got '
                f'{[(r, d) for _, _, r, d in findings]}')
    for path in sorted((fixtures / 'good').glob('*.cc')):
        findings = []
        lint_file(path, pathlib.PurePosixPath(f'src/walk/{path.name}'),
                  findings)
        if findings:
            failures.append(
                f'{path.name}: expected clean, got '
                f'{[(r, d) for _, _, r, d in findings]}')
    for failure in failures:
        print(f'self-test FAIL: {failure}')
    if not failures:
        print('bingo_lint self-test: all fixtures behave as expected')
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument('--self-test', action='store_true',
                        help='run the fixture suite instead of linting')
    parser.add_argument('roots', nargs='*',
                        default=['src', 'tools', 'bench', 'tests'],
                        help='repo-relative directories to lint')
    args = parser.parse_args()
    if args.self_test:
        return 1 if self_test() else 0
    findings = run_lint(args.roots)
    if findings:
        print(f'bingo_lint: {len(findings)} finding(s)')
        return 1
    print('bingo_lint: clean')
    return 0


if __name__ == '__main__':
    sys.exit(main())
