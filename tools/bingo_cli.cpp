// bingo_cli — command-line driver for the Bingo engine.
//
// Subcommands:
//   generate  --scale N --edges M [--bias degree|uniform|gauss|powerlaw]
//             [--undirected] --out FILE[.bin]
//       Generate an R-MAT weighted edge list and save it.
//
//   walk      --graph FILE --app deepwalk|node2vec|ppr|simple
//             [--length L] [--walkers W] [--p P] [--q Q] [--seed S]
//             [--paths OUT.txt]
//       Load a graph, build the Bingo store, run the application, report
//       steps/second (and optionally dump the paths).
//
//   stats     --graph FILE
//       Load a graph and print structural + store statistics (degrees,
//       group-kind census, memory breakdown).
//
// Examples:
//   bingo_cli generate --scale 16 --edges 1000000 --out g.bin
//   bingo_cli walk --graph g.bin --app deepwalk --length 80
//   bingo_cli stats --graph g.bin

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/bingo.h"

namespace {

using namespace bingo;

struct Args {
  std::string command;
  std::string graph_path;
  std::string out_path;
  std::string app = "deepwalk";
  std::string bias = "degree";
  int scale = 14;
  uint64_t edges = 200000;
  uint32_t length = 80;
  uint64_t walkers = 0;
  double p = 0.5;
  double q = 2.0;
  uint64_t seed = 42;
  bool undirected = false;
  std::string paths_out;
};

bool Parse(int argc, char** argv, Args& args) {
  if (argc < 2) {
    return false;
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--graph") {
      args.graph_path = next();
    } else if (flag == "--out") {
      args.out_path = next();
    } else if (flag == "--app") {
      args.app = next();
    } else if (flag == "--bias") {
      args.bias = next();
    } else if (flag == "--scale") {
      args.scale = std::atoi(next());
    } else if (flag == "--edges") {
      args.edges = std::atoll(next());
    } else if (flag == "--length") {
      args.length = static_cast<uint32_t>(std::atoi(next()));
    } else if (flag == "--walkers") {
      args.walkers = std::atoll(next());
    } else if (flag == "--p") {
      args.p = std::atof(next());
    } else if (flag == "--q") {
      args.q = std::atof(next());
    } else if (flag == "--seed") {
      args.seed = std::atoll(next());
    } else if (flag == "--undirected") {
      args.undirected = true;
    } else if (flag == "--paths") {
      args.paths_out = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

bool IsBinaryPath(const std::string& path) {
  return path.size() > 4 && path.substr(path.size() - 4) == ".bin";
}

int Generate(const Args& args) {
  util::Rng rng(args.seed);
  auto pairs = graph::GenerateRmat(args.scale, args.edges, rng);
  if (args.undirected) {
    graph::MakeUndirected(pairs);
  }
  graph::Canonicalize(pairs);
  const graph::VertexId n = graph::VertexId{1} << args.scale;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams params;
  if (args.bias == "uniform") {
    params.distribution = graph::BiasDistribution::kUniform;
  } else if (args.bias == "gauss") {
    params.distribution = graph::BiasDistribution::kGauss;
  } else if (args.bias == "powerlaw") {
    params.distribution = graph::BiasDistribution::kPowerLaw;
  } else {
    params.distribution = graph::BiasDistribution::kDegree;
  }
  util::Rng bias_rng(args.seed + 1);
  const auto biases = graph::GenerateBiases(csr, params, bias_rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);
  const bool ok = IsBinaryPath(args.out_path)
                      ? graph::SaveWeightedEdgesBinary(args.out_path, edges)
                      : graph::SaveWeightedEdgesText(args.out_path, edges);
  if (!ok) {
    std::fprintf(stderr, "failed to write %s\n", args.out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu edges over %u vertices to %s\n", edges.size(), n,
              args.out_path.c_str());
  return 0;
}

bool LoadEdges(const std::string& path, graph::WeightedEdgeList& edges) {
  return IsBinaryPath(path) ? graph::LoadWeightedEdgesBinary(path, edges)
                            : graph::LoadWeightedEdgesText(path, edges);
}

int Walk(const Args& args) {
  graph::WeightedEdgeList edges;
  if (!LoadEdges(args.graph_path, edges)) {
    std::fprintf(stderr, "failed to load %s\n", args.graph_path.c_str());
    return 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(edges);
  util::Timer build_timer;
  core::BingoStore store(graph::DynamicGraph::FromEdges(n, edges),
                         core::BingoConfig{}, &util::ThreadPool::Global());
  std::printf("built store over %u vertices / %zu edges in %.2fs (%.1f MiB)\n",
              n, edges.size(), build_timer.Seconds(),
              store.MemoryBytes() / 1024.0 / 1024.0);

  walk::WalkConfig cfg;
  cfg.walk_length = args.length;
  cfg.num_walkers = args.walkers;
  cfg.seed = args.seed;
  cfg.record_paths = !args.paths_out.empty();

  util::Timer walk_timer;
  walk::WalkResult result;
  if (args.app == "node2vec") {
    walk::Node2vecParams params;
    params.p = args.p;
    params.q = args.q;
    result = walk::RunNode2vec(store, cfg, params, &util::ThreadPool::Global());
  } else if (args.app == "ppr") {
    result = walk::RunPpr(store, cfg, 1.0 / args.length,
                          &util::ThreadPool::Global());
  } else if (args.app == "simple") {
    result = walk::RunSimpleSampling(store, cfg, &util::ThreadPool::Global());
  } else {
    result = walk::RunDeepWalk(store, cfg, &util::ThreadPool::Global());
  }
  const double seconds = walk_timer.Seconds();
  std::printf("%s: %llu steps in %.2fs (%.2fM steps/s)\n", args.app.c_str(),
              static_cast<unsigned long long>(result.total_steps), seconds,
              result.total_steps / seconds / 1e6);

  if (!args.paths_out.empty()) {
    std::ofstream out(args.paths_out);
    for (std::size_t w = 0; w + 1 < result.path_offsets.size(); ++w) {
      for (uint64_t i = result.path_offsets[w]; i < result.path_offsets[w + 1];
           ++i) {
        out << result.paths[i]
            << (i + 1 == result.path_offsets[w + 1] ? '\n' : ' ');
      }
    }
    std::printf("paths written to %s\n", args.paths_out.c_str());
  }
  return 0;
}

int Stats(const Args& args) {
  graph::WeightedEdgeList edges;
  if (!LoadEdges(args.graph_path, edges)) {
    std::fprintf(stderr, "failed to load %s\n", args.graph_path.c_str());
    return 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(edges);
  core::BingoStore store(graph::DynamicGraph::FromEdges(n, edges),
                         core::BingoConfig{}, &util::ThreadPool::Global());
  const auto& g = store.Graph();
  uint32_t max_degree = 0;
  uint64_t isolated = 0;
  for (graph::VertexId v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
    isolated += g.Degree(v) == 0 ? 1 : 0;
  }
  std::printf("vertices:    %u (%llu isolated)\n", n,
              static_cast<unsigned long long>(isolated));
  std::printf("edges:       %llu (avg degree %.2f, max %u)\n",
              static_cast<unsigned long long>(g.NumEdges()),
              static_cast<double>(g.NumEdges()) / n, max_degree);
  const auto stats = store.MemoryStats();
  std::printf("memory:      graph %.1f MiB, samplers %.1f MiB\n",
              stats.graph_bytes / 1024.0 / 1024.0,
              stats.SamplerBytes() / 1024.0 / 1024.0);
  const auto kinds = store.CountGroupKinds();
  const char* names[] = {"empty", "dense", "one-element", "sparse", "regular"};
  uint64_t total_groups = 0;
  for (uint64_t c : kinds) {
    total_groups += c;
  }
  std::printf("radix groups (%llu total):\n",
              static_cast<unsigned long long>(total_groups));
  for (int k = 1; k < 5; ++k) {
    std::printf("  %-12s %10llu (%.1f%%)\n", names[k],
                static_cast<unsigned long long>(kinds[k]),
                100.0 * kinds[k] / std::max<uint64_t>(1, total_groups));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: bingo_cli generate|walk|stats [flags]\n"
                 "see the header comment of tools/bingo_cli.cpp\n");
    return 2;
  }
  if (args.command == "generate") {
    return Generate(args);
  }
  if (args.command == "walk") {
    return Walk(args);
  }
  if (args.command == "stats") {
    return Stats(args);
  }
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  return 2;
}
