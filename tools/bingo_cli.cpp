// bingo_cli — command-line driver for the Bingo engine.
//
// Subcommands:
//   generate    --scale N --edges M [--bias degree|uniform|gauss|powerlaw]
//               [--undirected] --out FILE[.bin]
//       Generate an R-MAT weighted edge list and save it.
//
//   walk        --graph FILE
//               --app deepwalk|node2vec|ppr|simple|metapath|temporal
//               [--store bingo|alias|its|reservoir|partitioned] [--shards S]
//               [--driver engine|superstep] [--length L] [--walkers W]
//               [--p P] [--q Q] [--seed S] [--paths OUT.txt]
//               [--decay D] [--horizon H] [--epoch E]
//               [--types T] [--metapath T0,T1,...]
//               [--threads N] [--pin] [--numa]
//       Load a graph, build the chosen sampler store, run the application
//       through the store-generic engine, report steps/second (and
//       optionally dump the paths). Same seed + same store semantics =>
//       identical paths (e.g. bingo vs partitioned at any shard count).
//       --driver superstep (requires --store partitioned) runs the same
//       stepper on the walker-transfer superstep driver instead of the
//       shared-memory engine and additionally reports supersteps and
//       cross-shard walker migrations per step — same per-walker RNG
//       streams, so the paths stay identical to the engine's.
//       --app temporal runs first-order walks over the temporally decayed
//       bias pipeline: --decay D is the per-epoch factor in (0, 1),
//       --horizon caps the decayed age (0 = unbounded), and --epoch E
//       advances the store's logical clock to E after the build (as an
//       ordinary AdvanceTime batch), so edge biases are pre-scaled by
//       D^age before walking. --app metapath runs typed walks: vertex
//       types are v mod --types, and each step must land on the next type
//       of the cyclic --metapath pattern (default 0,1 = two-mode
//       bipartite). Both run on every store and driver bit-identically.
//
//   stats       --graph FILE
//       Load a graph and print structural + store statistics (degrees,
//       group-kind census, memory breakdown).
//
//   serve-bench --graph FILE [--store bingo|sharded] [--shards S]
//               [--batcher] [--threads N] [--batches B] [--batch-size K]
//               [--walkers W] [--length L] [--seed S]
//               [--kind mixed|insert|delete] [--pin] [--numa] [--json]
//               [--wal DIR] [--fsync] [--compact-fraction F]
//               [--open-loop --qps Q --duration S
//                --front batched|direct|index]
//       Drive the concurrent serving front-end: N query threads issue walk
//       queries against snapshot epochs while one writer streams B update
//       batches. Reports samples/sec, update latency, and snapshot
//       consistency. The engine/update executor is shaped by --pin
//       (CPU-affinity pinning) and --numa (interleave workers across NUMA
//       nodes); --json appends one machine-readable JSON line with
//       {throughput, p50, p99, recovery_ms, ...} for the perf-trajectory
//       tooling. --store sharded uses the per-shard replica pairs
//       (ShardedWalkService) and reports p50/p99 per-batch update latency;
//       --batcher routes updates one edge at a time through the coalescing
//       UpdateBatcher instead of pre-formed batches. --walkers is walkers
//       *per query* (0 = 1024), unlike walk where 0 means one per vertex.
//       --wal DIR (sharded only) attaches WAL-backed durability: every
//       batch is journaled before it applies, a final incremental
//       checkpoint runs after the stream, and the tool then recovers a
//       second service from DIR and reports the recovery time.
//       --open-loop switches serve-bench to an open-loop load generator:
//       N client threads issue DeepWalk queries with Poisson arrivals at a
//       combined offered rate of --qps for --duration seconds, and each
//       query's latency is measured from its SCHEDULED arrival time
//       (coordinated-omission-free), recorded into an HDR-style histogram.
//       --front batched routes queries through the coalescing QueryBatcher
//       (fused walk passes, one snapshot per dispatch); --front direct
//       issues one service query per request; --front index mounts a
//       WalkIndexService and serves each query as a corpus read (no
//       sampling on the query path — the always-fresh walk index). Same
//       seeds => identical walk results for batched vs direct; the JSON
//       line reports offered vs achieved QPS and p50/p90/p99/p999 for the
//       QPS-vs-tail-latency trajectory.
//
//   build-csr   --graph FILE --out FILE.csr [--block-bytes N[K|M|G]]
//       Write the graph as the immutable block-structured CSR container
//       (graph/csr_mmap.h) the out-of-core walk tier mmaps from. Edges are
//       stably sorted vertex-major first, so any edge-list file works.
//
//   walk --store ooc --csr FILE.csr [--memory-budget N[K|M|G]]
//               [--spill-dir DIR --spill-threshold W]
//       Out-of-core walk: mounts a TieredStore over the CSR container and
//       runs the block-scheduled driver (walk/ooc.h) under the resident-
//       byte budget (0 = unconstrained). Walkers park in per-block queues
//       (spillable to DIR past W walkers) and the block with the most
//       parked walkers is loaded next. Reports block passes/loads/
//       evictions, peak resident bytes, and process peak RSS; walk output
//       is bit-identical across budgets and thread counts.
//
//   serve-bench --store ooc --wal DIR [--memory-budget N[K|M|G]] ...
//       Runs the standard serve-bench stress on an in-memory service with
//       WAL durability into DIR, checkpoints, tears it down, then recovers
//       an OUT-OF-CORE service from DIR: the base snapshot is streamed
//       record by record into DIR/base.csr (never materialized) and two
//       tiered replicas mount it under the budget. Reports streamed
//       recovery time, verifies queries + further updates on the recovered
//       service, and emits recovery_ms/peak_rss_bytes in --json.
//
//   checkpoint  --graph FILE --dir DIR [--shards S] [--fsync]
//               [--compact-fraction F]
//       Build a sharded service over the graph and write its durable base
//       (per-shard base snapshots + WAL segments + manifest) into DIR.
//
//   restore     --dir DIR [--out FILE.bin]
//       Recover a sharded service from DIR (base + WAL replay, torn tails
//       dropped), report recovery time and WAL replay counts, verify
//       invariants, and optionally dump the recovered edge list.
//
// Examples:
//   bingo_cli generate --scale 16 --edges 1000000 --out g.bin
//   bingo_cli walk --graph g.bin --app deepwalk --length 80
//   bingo_cli walk --graph g.bin --app ppr --store partitioned --shards 4
//   bingo_cli serve-bench --graph g.bin --threads 8 --batches 20
//   bingo_cli stats --graph g.bin

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/bingo.h"
#include "src/util/cpu_features.h"
#include "src/util/histogram.h"

namespace {

using namespace bingo;

struct Args {
  std::string command;
  std::string graph_path;
  std::string out_path;
  std::string app = "deepwalk";
  std::string bias = "degree";
  std::string store = "bingo";
  std::string driver = "engine";
  std::string kind = "mixed";
  int scale = 14;
  int shards = 4;
  int threads = 4;
  bool threads_set = false;  // `walk` defaults to hardware concurrency
  int batches = 10;
  uint64_t edges = 200000;
  uint64_t batch_size = 10000;
  uint32_t length = 80;
  uint64_t walkers = 0;
  double p = 0.5;
  double q = 2.0;
  uint64_t seed = 42;
  bool undirected = false;
  bool batcher = false;
  bool pin = false;    // pin executor workers to planned CPUs
  bool numa = false;   // interleave executor workers across NUMA nodes
  bool json = false;   // serve-bench: append a machine-readable JSON line
  std::string paths_out;
  std::string dir;       // checkpoint/restore durability directory
  std::string wal_dir;   // serve-bench --wal
  bool fsync = false;
  double compact_fraction = 0.5;
  bool open_loop = false;        // serve-bench: open-loop load generator
  double qps = 200.0;            // combined offered arrival rate
  double duration = 5.0;         // seconds of offered load
  std::string front = "batched"; // batched (QueryBatcher) | direct
  // Bias-pipeline knobs (walk --app temporal/metapath, serve-bench decay).
  double decay = 1.0;            // per-epoch temporal decay (1.0 = off)
  uint32_t horizon = 0;          // decay age cap in epochs (0 = unbounded)
  uint32_t epoch = 0;            // walk: advance the logical clock to E
  uint32_t types = 2;            // metapath: vertex type count (v mod T)
  std::string metapath = "0,1";  // metapath: cyclic type pattern
  int advance_every = 0;         // serve-bench: AdvanceTime every K batches
  // Out-of-core knobs (build-csr, walk --store ooc, serve-bench --store ooc).
  std::string csr_path;            // walk --store ooc: the CSR container
  uint64_t memory_budget = 0;      // block-cache budget in bytes (0 = all)
  uint64_t block_bytes = graph::kDefaultCsrBlockBytes;  // build-csr target
  std::string spill_dir;           // walk --store ooc: park-queue spill dir
  uint64_t spill_threshold = 0;    // walkers per queue before spilling (0 = off)
};

// "64M" / "16384" / "1G" -> bytes. Accepts K/M/G suffixes (binary units).
bool ParseByteSize(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text) {
    return false;
  }
  uint64_t scale = 1;
  if (*end == 'K' || *end == 'k') {
    scale = 1ull << 10;
    ++end;
  } else if (*end == 'M' || *end == 'm') {
    scale = 1ull << 20;
    ++end;
  } else if (*end == 'G' || *end == 'g') {
    scale = 1ull << 30;
    ++end;
  }
  if (*end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(value) * scale;
  return true;
}

// The pipeline-bearing store config the walk/serve flags describe.
core::BingoConfig PipelineConfig(const Args& args) {
  core::BingoConfig config;
  config.pipeline.decay = args.decay;
  config.pipeline.horizon = args.horizon;
  return config;
}

// "0,1,2" -> pattern {0,1,2}; false on malformed text or out-of-range types.
bool ParseMetapathPattern(const Args& args, walk::MetapathParams& params) {
  params.num_types = args.types;
  params.pattern.clear();
  const std::string& s = args.metapath;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) {
      end = s.size();
    }
    if (end == pos) {
      return false;  // empty component
    }
    uint32_t type = 0;
    for (std::size_t i = pos; i < end; ++i) {
      if (s[i] < '0' || s[i] > '9') {
        return false;
      }
      type = type * 10 + static_cast<uint32_t>(s[i] - '0');
    }
    params.pattern.push_back(type);
    pos = end + (end < s.size() ? 1 : 0);
  }
  return params.Valid();
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: bingo_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate    --scale N --edges M --out FILE[.bin]\n"
      "              [--bias degree|uniform|gauss|powerlaw] [--undirected]\n"
      "  walk        --graph FILE\n"
      "              [--app deepwalk|node2vec|ppr|simple|metapath|temporal]\n"
      "              [--store bingo|alias|its|reservoir|partitioned]\n"
      "              [--shards S] [--driver engine|superstep]\n"
      "              [--length L] [--walkers W] [--p P] [--q Q]\n"
      "              [--seed S] [--paths OUT.txt]\n"
      "              [--decay D] [--horizon H] [--epoch E]\n"
      "              [--types T] [--metapath T0,T1,...]\n"
      "              [--threads N] [--pin] [--numa]\n"
      "              (--driver superstep runs the walker-transfer driver on\n"
      "               the partitioned store and reports migrations/step;\n"
      "               --pin/--numa shape the work-stealing executor;\n"
      "               --app temporal decays edge biases by D^age with the\n"
      "               clock advanced to --epoch; --app metapath constrains\n"
      "               each step to the next type of the cyclic pattern,\n"
      "               types being vertex id mod --types)\n"
      "  stats       --graph FILE\n"
      "  build-csr   --graph FILE --out FILE.csr [--block-bytes N[K|M|G]]\n"
      "              (write the immutable mmap-backed CSR container the\n"
      "               out-of-core tier walks from)\n"
      "  walk        --store ooc --csr FILE.csr\n"
      "              [--memory-budget N[K|M|G]] [--spill-dir DIR\n"
      "               --spill-threshold W] [--app deepwalk|node2vec|ppr|\n"
      "              metapath] [walk flags as above]\n"
      "              (out-of-core block-scheduled walk over the CSR tier:\n"
      "               resident blocks are capped at the byte budget, walkers\n"
      "               park per block and the block with most parked walkers\n"
      "               loads next; 0 = unconstrained. Output is bit-identical\n"
      "               at every budget/thread count)\n"
      "  serve-bench --graph FILE [--store bingo|sharded|ooc] [--shards S]\n"
      "              [--batcher] [--threads N] [--batches B]\n"
      "              [--batch-size K] [--walkers W] [--length L] [--seed S]\n"
      "              [--kind mixed|insert|delete] [--pin] [--numa] [--json]\n"
      "              [--wal DIR] [--fsync] [--compact-fraction F]\n"
      "              [--decay D] [--horizon H] [--advance-every K]\n"
      "              [--open-loop --qps Q --duration S\n"
      "               --front batched|direct|index]\n"
      "              (--walkers = walkers per query, 0 = 1024; unlike walk,\n"
      "               where 0 = one walker per vertex; --wal journals every\n"
      "               batch and reports recovery time afterwards;\n"
      "               --open-loop issues Poisson arrivals at Q queries/sec\n"
      "               and reports coordinated-omission-free p50/p99/p999,\n"
      "               through the QueryBatcher, one query per request, or\n"
      "               corpus reads from the always-fresh walk index;\n"
      "               --advance-every K interleaves an AdvanceTime tick\n"
      "               into the stream every K batches — with --decay D the\n"
      "               tick re-buckets every stored bias under live queries;\n"
      "               --store ooc requires --wal DIR: after the stress +\n"
      "               checkpoint it recovers an out-of-core service from\n"
      "               DIR by STREAMING the base into DIR/base.csr and\n"
      "               reports the streamed recovery time + peak RSS)\n"
      "  checkpoint  --graph FILE --dir DIR [--shards S] [--fsync]\n"
      "              [--compact-fraction F]\n"
      "  restore     --dir DIR [--out FILE.bin]\n"
      "\n"
      "see the header comment of tools/bingo_cli.cpp for details\n");
}

bool Parse(int argc, char** argv, Args& args) {
  if (argc < 2) {
    return false;
  }
  args.command = argv[1];
  bool missing_value = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    // Every flag except the booleans (--undirected, --batcher, --pin,
    // --numa, --json, --fsync, --open-loop) takes a value; the next token
    // must exist and not itself be a flag.
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        missing_value = true;
        return "";
      }
      return argv[++i];
    };
    if (flag == "--graph") {
      args.graph_path = next();
    } else if (flag == "--out") {
      args.out_path = next();
    } else if (flag == "--app") {
      args.app = next();
    } else if (flag == "--bias") {
      args.bias = next();
    } else if (flag == "--store") {
      args.store = next();
    } else if (flag == "--driver") {
      args.driver = next();
    } else if (flag == "--kind") {
      args.kind = next();
    } else if (flag == "--scale") {
      args.scale = std::atoi(next());
    } else if (flag == "--shards") {
      args.shards = std::atoi(next());
    } else if (flag == "--threads") {
      args.threads = std::atoi(next());
      args.threads_set = true;
    } else if (flag == "--batches") {
      args.batches = std::atoi(next());
    } else if (flag == "--batch-size") {
      args.batch_size = std::atoll(next());
    } else if (flag == "--edges") {
      args.edges = std::atoll(next());
    } else if (flag == "--length") {
      const int value = std::atoi(next());
      if (!missing_value && value <= 0) {  // a missing value errors below
        std::fprintf(stderr, "--length must be a positive integer\n");
        return false;
      }
      args.length = static_cast<uint32_t>(value);
    } else if (flag == "--walkers") {
      const long long value = std::atoll(next());
      if (!missing_value && value < 0) {
        std::fprintf(stderr, "--walkers must be >= 0 (0 = one per vertex)\n");
        return false;
      }
      args.walkers = static_cast<uint64_t>(value);
    } else if (flag == "--p" || flag == "--q") {
      const double value = std::atof(next());
      if (!missing_value && !(value > 0.0)) {  // p, q scale 1/p, 1/q
        std::fprintf(stderr, "%s must be > 0\n", flag.c_str());
        return false;
      }
      (flag == "--p" ? args.p : args.q) = value;
    } else if (flag == "--seed") {
      args.seed = std::atoll(next());
    } else if (flag == "--undirected") {
      args.undirected = true;
    } else if (flag == "--batcher") {
      args.batcher = true;
    } else if (flag == "--pin") {
      args.pin = true;
    } else if (flag == "--numa") {
      args.numa = true;
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--fsync") {
      args.fsync = true;
    } else if (flag == "--paths") {
      args.paths_out = next();
    } else if (flag == "--dir") {
      args.dir = next();
    } else if (flag == "--wal") {
      args.wal_dir = next();
    } else if (flag == "--open-loop") {
      args.open_loop = true;
    } else if (flag == "--qps") {
      const double value = std::atof(next());
      if (!missing_value && !(value > 0.0)) {
        std::fprintf(stderr, "--qps must be > 0\n");
        return false;
      }
      args.qps = value;
    } else if (flag == "--duration") {
      const double value = std::atof(next());
      if (!missing_value && !(value > 0.0)) {
        std::fprintf(stderr, "--duration must be > 0\n");
        return false;
      }
      args.duration = value;
    } else if (flag == "--front") {
      args.front = next();
    } else if (flag == "--decay") {
      const double value = std::atof(next());
      if (!missing_value && !(value > 0.0 && value <= 1.0)) {
        std::fprintf(stderr, "--decay must be in (0, 1]\n");
        return false;
      }
      args.decay = value;
    } else if (flag == "--horizon") {
      args.horizon = static_cast<uint32_t>(std::atoll(next()));
    } else if (flag == "--epoch") {
      args.epoch = static_cast<uint32_t>(std::atoll(next()));
    } else if (flag == "--types") {
      const int value = std::atoi(next());
      if (!missing_value && value <= 0) {
        std::fprintf(stderr, "--types must be a positive integer\n");
        return false;
      }
      args.types = static_cast<uint32_t>(value);
    } else if (flag == "--metapath") {
      args.metapath = next();
    } else if (flag == "--advance-every") {
      const int value = std::atoi(next());
      if (!missing_value && value < 0) {
        std::fprintf(stderr, "--advance-every must be >= 0\n");
        return false;
      }
      args.advance_every = value;
    } else if (flag == "--csr") {
      args.csr_path = next();
    } else if (flag == "--spill-dir") {
      args.spill_dir = next();
    } else if (flag == "--spill-threshold") {
      const long long value = std::atoll(next());
      if (!missing_value && value < 0) {
        std::fprintf(stderr, "--spill-threshold must be >= 0 (0 = off)\n");
        return false;
      }
      args.spill_threshold = static_cast<uint64_t>(value);
    } else if (flag == "--memory-budget") {
      const char* text = next();
      if (!missing_value && !ParseByteSize(text, &args.memory_budget)) {
        std::fprintf(stderr,
                     "--memory-budget must be bytes with optional K/M/G "
                     "suffix (got %s)\n",
                     text);
        return false;
      }
    } else if (flag == "--block-bytes") {
      const char* text = next();
      if (!missing_value &&
          (!ParseByteSize(text, &args.block_bytes) || args.block_bytes == 0)) {
        std::fprintf(stderr,
                     "--block-bytes must be positive bytes with optional "
                     "K/M/G suffix (got %s)\n",
                     text);
        return false;
      }
    } else if (flag == "--compact-fraction") {
      const double value = std::atof(next());
      if (!missing_value && (value < 0.0 || !(value < 1e18))) {
        std::fprintf(stderr, "--compact-fraction must be >= 0\n");
        return false;
      }
      args.compact_fraction = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
    if (missing_value) {
      std::fprintf(stderr, "missing value for flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

bool ValidatePositive(const char* name, long long value) {
  if (value <= 0) {
    std::fprintf(stderr, "%s must be positive (got %lld)\n", name, value);
    return false;
  }
  return true;
}

bool IsBinaryPath(const std::string& path) {
  return path.size() > 4 && path.substr(path.size() - 4) == ".bin";
}

int Generate(const Args& args) {
  if (args.out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  if (!ValidatePositive("--scale", args.scale) ||
      !ValidatePositive("--edges", static_cast<long long>(args.edges))) {
    return 2;
  }
  util::Rng rng(args.seed);
  auto pairs = graph::GenerateRmat(args.scale, args.edges, rng);
  if (args.undirected) {
    graph::MakeUndirected(pairs);
  }
  graph::Canonicalize(pairs);
  const graph::VertexId n = graph::VertexId{1} << args.scale;
  const graph::Csr csr = graph::Csr::FromPairs(n, pairs);
  graph::BiasParams params;
  if (args.bias == "uniform") {
    params.distribution = graph::BiasDistribution::kUniform;
  } else if (args.bias == "gauss") {
    params.distribution = graph::BiasDistribution::kGauss;
  } else if (args.bias == "powerlaw") {
    params.distribution = graph::BiasDistribution::kPowerLaw;
  } else if (args.bias == "degree") {
    params.distribution = graph::BiasDistribution::kDegree;
  } else {
    std::fprintf(stderr, "unknown bias distribution: %s\n", args.bias.c_str());
    return 2;
  }
  util::Rng bias_rng(args.seed + 1);
  const auto biases = graph::GenerateBiases(csr, params, bias_rng);
  const auto edges = graph::ToWeightedEdges(csr, biases);
  const bool ok = IsBinaryPath(args.out_path)
                      ? graph::SaveWeightedEdgesBinary(args.out_path, edges)
                      : graph::SaveWeightedEdgesText(args.out_path, edges);
  if (!ok) {
    std::fprintf(stderr, "failed to write %s\n", args.out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu edges over %u vertices to %s\n", edges.size(), n,
              args.out_path.c_str());
  return 0;
}

bool LoadGraphArg(const Args& args, graph::WeightedEdgeList& edges) {
  if (args.graph_path.empty()) {
    std::fprintf(stderr, "%s: --graph is required\n", args.command.c_str());
    return false;
  }
  const bool ok = IsBinaryPath(args.graph_path)
                      ? graph::LoadWeightedEdgesBinary(args.graph_path, edges)
                      : graph::LoadWeightedEdgesText(args.graph_path, edges);
  if (!ok) {
    std::fprintf(stderr, "failed to load %s\n", args.graph_path.c_str());
    return false;
  }
  if (edges.empty()) {
    std::fprintf(stderr, "%s contains no edges\n", args.graph_path.c_str());
    return false;
  }
  return true;
}

// Flattened-corpus dump shared by both walk drivers: one line per walker.
void WritePaths(const std::string& path,
                const std::vector<uint64_t>& path_offsets,
                const std::vector<graph::VertexId>& paths) {
  std::ofstream out(path);
  for (std::size_t w = 0; w + 1 < path_offsets.size(); ++w) {
    for (uint64_t i = path_offsets[w]; i < path_offsets[w + 1]; ++i) {
      out << paths[i] << (i + 1 == path_offsets[w + 1] ? '\n' : ' ');
    }
  }
  std::printf("paths written to %s\n", path.c_str());
}

// Executor shaped by the placement flags: --threads (0/unset = hardware
// concurrency), --pin, --numa.
util::PoolOptions ExecutorOptions(const Args& args) {
  util::PoolOptions options;
  options.num_threads =
      args.threads_set ? static_cast<std::size_t>(std::max(args.threads, 0))
                       : 0;
  options.pin_threads = args.pin;
  options.numa_interleave = args.numa;
  return options;
}

// Reports the executor shape whenever placement was requested, including
// whether the pin actually took (AffinityApplied is settled by then: the
// pool constructor waits for every worker's pin attempt).
void PrintExecutorBanner(const Args& args, const util::ThreadPool& pool) {
  if (!args.pin && !args.numa) {
    return;
  }
  std::printf("executor: %zu workers, pin %s, numa %s%s\n", pool.NumThreads(),
              args.pin ? "on" : "off", args.numa ? "interleave" : "off",
              args.pin && !pool.AffinityApplied() ? " (pinning failed)" : "");
}

// Runs the selected application on any AdjacencyStore backend.
template <walk::AdjacencyStore Store>
int RunWalkApp(const Args& args, const Store& store, util::ThreadPool* pool) {
  walk::WalkConfig cfg;
  cfg.walk_length = args.length;
  cfg.num_walkers = args.walkers;
  cfg.seed = args.seed;
  cfg.record_paths = !args.paths_out.empty();

  util::Timer walk_timer;
  walk::WalkResult result;
  if (args.app == "node2vec") {
    walk::Node2vecParams params;
    params.p = args.p;
    params.q = args.q;
    result = walk::RunNode2vec(store, cfg, params, pool);
  } else if (args.app == "ppr") {
    result = walk::RunPpr(store, cfg, 1.0 / args.length, pool);
  } else if (args.app == "simple") {
    result = walk::RunSimpleSampling(store, cfg, pool);
  } else if (args.app == "metapath") {
    walk::MetapathParams params;
    ParseMetapathPattern(args, params);  // validated in Walk()
    result = walk::RunMetapath(store, cfg, params, pool);
  } else {  // "deepwalk"/"temporal": first-order walks over the (possibly
            // decayed) composed biases; Walk() validated the app name
    result = walk::RunDeepWalk(store, cfg, pool);
  }
  const double seconds = walk_timer.Seconds();
  std::printf("%s[%s]: %llu steps in %.2fs (%.2fM steps/s)\n",
              args.app.c_str(), args.store.c_str(),
              static_cast<unsigned long long>(result.total_steps), seconds,
              result.total_steps / seconds / 1e6);

  if (!args.paths_out.empty()) {
    WritePaths(args.paths_out, result.path_offsets, result.paths);
  }
  return 0;
}

// The walker-transfer execution model: same steppers, same per-walker RNG
// streams, but walkers hop between per-shard queues superstep by superstep.
// Reports the communication volume (cross-shard migrations per step) the
// multi-device design would pay.
int RunSuperstepApp(const Args& args, const walk::PartitionedBingoStore& store,
                    util::ThreadPool* pool) {
  walk::WalkConfig cfg;
  cfg.walk_length = args.length;
  cfg.num_walkers = args.walkers;
  cfg.seed = args.seed;
  cfg.record_paths = !args.paths_out.empty();

  util::Timer walk_timer;
  walk::PartitionedWalkResult result;
  if (args.app == "node2vec") {
    walk::Node2vecParams params;
    params.p = args.p;
    params.q = args.q;
    result = walk::RunPartitionedNode2vec(store, cfg, params, pool);
  } else if (args.app == "ppr") {
    result = walk::RunPartitionedPpr(store, cfg, 1.0 / args.length, pool);
  } else if (args.app == "simple") {
    result = walk::RunPartitionedSimpleSampling(store, cfg, pool);
  } else if (args.app == "metapath") {
    walk::MetapathParams params;
    ParseMetapathPattern(args, params);  // validated in Walk()
    result = walk::RunPartitionedMetapath(store, cfg, params, pool);
  } else {  // "deepwalk"/"temporal": Walk() validated the app name
    result = walk::RunPartitionedDeepWalk(store, cfg, pool);
  }
  const double seconds = walk_timer.Seconds();
  std::printf("%s[superstep x%d]: %llu steps in %.2fs (%.2fM steps/s)\n",
              args.app.c_str(), store.NumShards(),
              static_cast<unsigned long long>(result.total_steps), seconds,
              result.total_steps / seconds / 1e6);
  std::printf(
      "supersteps %llu, finished walkers %llu, migrations %llu "
      "(%.3f per step)\n",
      static_cast<unsigned long long>(result.supersteps),
      static_cast<unsigned long long>(result.finished_walkers),
      static_cast<unsigned long long>(result.walker_migrations),
      result.total_steps == 0
          ? 0.0
          : static_cast<double>(result.walker_migrations) /
                static_cast<double>(result.total_steps));

  if (!args.paths_out.empty()) {
    WritePaths(args.paths_out, result.path_offsets, result.paths);
  }
  return 0;
}

int WalkOoc(const Args& args);  // defined below, after Stats

int Walk(const Args& args) {
  // Reject bad names before paying for the graph load or store build.
  if (args.app != "deepwalk" && args.app != "node2vec" && args.app != "ppr" &&
      args.app != "simple" && args.app != "metapath" &&
      args.app != "temporal") {
    std::fprintf(stderr, "unknown app: %s\n", args.app.c_str());
    return 2;
  }
  if (args.app == "temporal" && args.decay >= 1.0) {
    std::fprintf(stderr,
                 "--app temporal needs --decay D in (0, 1) to have any "
                 "temporal effect\n");
    return 2;
  }
  if (args.app == "metapath") {
    walk::MetapathParams params;
    if (!ParseMetapathPattern(args, params)) {
      std::fprintf(stderr,
                   "--metapath must be comma-separated types, each < --types "
                   "(got \"%s\" with %u types)\n",
                   args.metapath.c_str(), args.types);
      return 2;
    }
  }
  if (args.store == "ooc") {
    return WalkOoc(args);  // its own driver + --csr input; validated there
  }
  if (args.store != "bingo" && args.store != "alias" && args.store != "its" &&
      args.store != "reservoir" && args.store != "partitioned") {
    std::fprintf(stderr, "unknown store: %s\n", args.store.c_str());
    return 2;
  }
  if (args.driver != "engine" && args.driver != "superstep") {
    std::fprintf(stderr, "unknown driver: %s\n", args.driver.c_str());
    return 2;
  }
  if (args.driver == "superstep" && args.store != "partitioned") {
    std::fprintf(stderr, "--driver superstep requires --store partitioned\n");
    return 2;
  }
  if (args.store == "partitioned" && !ValidatePositive("--shards", args.shards)) {
    return 2;
  }
  graph::WeightedEdgeList edges;
  if (!LoadGraphArg(args, edges)) {
    return args.graph_path.empty() ? 2 : 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(edges);
  util::ThreadPool walk_pool(ExecutorOptions(args));
  util::ThreadPool* pool = &walk_pool;
  PrintExecutorBanner(args, walk_pool);

  // The bias pipeline the flags describe. Stores build at logical epoch 0
  // (loaded biases are the stored effective biases); --epoch E then
  // advances the clock through an ordinary AdvanceTime batch, re-bucketing
  // every edge's bias by decay^age — the same path a live service takes.
  const core::BingoConfig config = PipelineConfig(args);
  const auto advance_clock = [&](auto& store) {
    if (args.epoch > 0) {
      store.ApplyBatch({graph::MakeAdvanceTime(args.epoch)}, pool);
      std::printf("advanced logical clock to epoch %u (decay %.4f)\n",
                  args.epoch, args.decay);
    }
  };

  // One build/report/run path for every backend; `make_store` returns the
  // freshly built store (copy-elided).
  const auto build_and_run = [&](const std::string& label,
                                 const auto& make_store) {
    util::Timer build_timer;
    auto store = make_store();
    std::printf(
        "built %s store over %u vertices / %zu edges in %.2fs (%.1f MiB)\n",
        label.c_str(), n, edges.size(), build_timer.Seconds(),
        store.MemoryBytes() / 1024.0 / 1024.0);
    advance_clock(store);
    return RunWalkApp(args, store, pool);
  };

  if (args.store == "bingo") {
    return build_and_run(args.store, [&] {
      return core::BingoStore(graph::DynamicGraph::FromEdges(n, edges), config,
                              pool);
    });
  }
  if (args.store == "alias") {
    return build_and_run(args.store, [&] {
      return walk::AliasStore(graph::DynamicGraph::FromEdges(n, edges), config,
                              pool);
    });
  }
  if (args.store == "its") {
    return build_and_run(args.store, [&] {
      return walk::ItsStore(graph::DynamicGraph::FromEdges(n, edges), config,
                            pool);
    });
  }
  if (args.store == "reservoir") {
    return build_and_run(args.store, [&] {
      return walk::ReservoirStore(graph::DynamicGraph::FromEdges(n, edges),
                                  config, pool);
    });
  }
  if (args.store == "partitioned") {
    if (args.driver == "superstep") {
      util::Timer build_timer;
      walk::PartitionedBingoStore store(edges, n, args.shards, config, pool);
      std::printf(
          "built partitioned(%d shards) store over %u vertices / %zu edges "
          "in %.2fs (%.1f MiB)\n",
          args.shards, n, edges.size(), build_timer.Seconds(),
          store.MemoryBytes() / 1024.0 / 1024.0);
      advance_clock(store);
      return RunSuperstepApp(args, store, pool);
    }
    return build_and_run(
        "partitioned(" + std::to_string(args.shards) + " shards)",
        [&] { return walk::PartitionedBingoStore(edges, n, args.shards, config,
                                                 pool); });
  }
  // Unreachable while the upfront name check and this chain stay in sync.
  std::fprintf(stderr, "unknown store: %s\n", args.store.c_str());
  return 2;
}

int Stats(const Args& args) {
  graph::WeightedEdgeList edges;
  if (!LoadGraphArg(args, edges)) {
    return args.graph_path.empty() ? 2 : 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(edges);
  core::BingoStore store(graph::DynamicGraph::FromEdges(n, edges),
                         core::BingoConfig{}, &util::ThreadPool::Global());
  const auto& g = store.Graph();
  uint32_t max_degree = 0;
  uint64_t isolated = 0;
  for (graph::VertexId v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
    isolated += g.Degree(v) == 0 ? 1 : 0;
  }
  std::printf("vertices:    %u (%llu isolated)\n", n,
              static_cast<unsigned long long>(isolated));
  std::printf("edges:       %llu (avg degree %.2f, max %u)\n",
              static_cast<unsigned long long>(g.NumEdges()),
              static_cast<double>(g.NumEdges()) / n, max_degree);
  const auto stats = store.MemoryStats();
  std::printf("memory:      graph %.1f MiB, samplers %.1f MiB\n",
              stats.graph_bytes / 1024.0 / 1024.0,
              stats.SamplerBytes() / 1024.0 / 1024.0);
  const auto kinds = store.CountGroupKinds();
  const char* names[] = {"empty", "dense", "one-element", "sparse", "regular"};
  uint64_t total_groups = 0;
  for (uint64_t c : kinds) {
    total_groups += c;
  }
  std::printf("radix groups (%llu total):\n",
              static_cast<unsigned long long>(total_groups));
  for (int k = 1; k < 5; ++k) {
    std::printf("  %-12s %10llu (%.1f%%)\n", names[k],
                static_cast<unsigned long long>(kinds[k]),
                100.0 * kinds[k] / std::max<uint64_t>(1, total_groups));
  }
  return 0;
}

// Writes --graph as the immutable CSR container the out-of-core tier maps.
int BuildCsr(const Args& args) {
  if (args.out_path.empty()) {
    std::fprintf(stderr, "build-csr: --out is required\n");
    return 2;
  }
  graph::WeightedEdgeList edges;
  if (!LoadGraphArg(args, edges)) {
    return args.graph_path.empty() ? 2 : 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(edges);
  // The container is vertex-major; stable sort preserves each vertex's
  // (timestamp, insertion) order, so any edge-list file round-trips.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const graph::WeightedEdge& a,
                      const graph::WeightedEdge& b) { return a.src < b.src; });
  util::Timer write_timer;
  std::string error;
  if (!graph::WriteCsrFile(args.out_path, n, edges, args.block_bytes,
                           &error)) {
    std::fprintf(stderr, "build-csr failed: %s\n", error.c_str());
    return 1;
  }
  graph::CsrMmap csr;
  if (!graph::CsrMmap::Open(args.out_path, &csr, &error)) {
    std::fprintf(stderr, "build-csr verify failed: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %u vertices, %llu edges, %u blocks x ~%.1f MiB "
      "(index %.1f MiB) in %.2fs\n",
      args.out_path.c_str(), csr.NumVertices(),
      static_cast<unsigned long long>(csr.NumEdges()), csr.NumBlocks(),
      csr.BlockBytesTarget() / 1024.0 / 1024.0,
      csr.IndexBytes() / 1024.0 / 1024.0, write_timer.Seconds());
  return 0;
}

// Out-of-core walk: TieredStore over a CSR container, block-scheduled
// driver, resident bytes capped at --memory-budget.
int WalkOoc(const Args& args) {
  if (args.app != "deepwalk" && args.app != "node2vec" && args.app != "ppr" &&
      args.app != "metapath") {
    std::fprintf(stderr,
                 "--store ooc supports --app deepwalk|node2vec|ppr|metapath "
                 "(got %s)\n",
                 args.app.c_str());
    return 2;
  }
  if (args.csr_path.empty()) {
    std::fprintf(stderr,
                 "walk --store ooc needs --csr FILE.csr (run build-csr "
                 "first)\n");
    return 2;
  }
  if (args.spill_threshold > 0 && args.spill_dir.empty()) {
    std::fprintf(stderr, "--spill-threshold needs --spill-dir DIR\n");
    return 2;
  }
  util::ThreadPool walk_pool(ExecutorOptions(args));
  util::ThreadPool* pool = &walk_pool;
  PrintExecutorBanner(args, walk_pool);

  walk::TieredStoreOptions store_options;
  store_options.memory_budget_bytes = args.memory_budget;
  std::string error;
  util::Timer open_timer;
  auto store = walk::TieredStore::Open(args.csr_path, core::BingoConfig{},
                                       store_options, pool, &error);
  if (store == nullptr) {
    std::fprintf(stderr, "failed to mount %s: %s\n", args.csr_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf(
      "mounted %s: %u vertices, %llu edges, %u csr blocks, budget %s in "
      "%.2fs\n",
      args.csr_path.c_str(), store->NumVertices(),
      static_cast<unsigned long long>(store->NumEdges()),
      store->Csr().NumBlocks(),
      args.memory_budget == 0
          ? "unconstrained"
          : (std::to_string(args.memory_budget / 1024) + " KiB").c_str(),
      open_timer.Seconds());

  walk::WalkConfig cfg;
  cfg.walk_length = args.length;
  cfg.num_walkers = args.walkers;
  cfg.seed = args.seed;
  cfg.record_paths = !args.paths_out.empty();
  walk::OocWalkOptions ooc_options;
  ooc_options.spill_threshold_walkers =
      static_cast<std::size_t>(args.spill_threshold);
  ooc_options.spill_dir = args.spill_dir;

  util::Timer walk_timer;
  walk::OocWalkResult result;
  if (args.app == "node2vec") {
    walk::Node2vecParams params;
    params.p = args.p;
    params.q = args.q;
    result = walk::RunOocNode2vec(*store, cfg, params, pool, ooc_options);
  } else if (args.app == "ppr") {
    result = walk::RunOocPpr(*store, cfg, 1.0 / args.length, pool, ooc_options);
  } else if (args.app == "metapath") {
    walk::MetapathParams params;
    if (!ParseMetapathPattern(args, params)) {
      std::fprintf(stderr, "invalid --metapath \"%s\" with %u types\n",
                   args.metapath.c_str(), args.types);
      return 2;
    }
    result = walk::RunOocMetapath(*store, cfg, params, pool, ooc_options);
  } else {
    result = walk::RunOocDeepWalk(*store, cfg, pool, ooc_options);
  }
  const double seconds = walk_timer.Seconds();
  if (!result.error.empty()) {
    std::fprintf(stderr, "ooc walk failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%s[ooc]: %llu steps in %.2fs (%.2fM steps/s)\n",
              args.app.c_str(),
              static_cast<unsigned long long>(result.total_steps), seconds,
              result.total_steps / seconds / 1e6);
  std::printf(
      "blocks:           %llu passes, %llu loads, %llu evictions, peak "
      "resident %.1f MiB\n",
      static_cast<unsigned long long>(result.block_passes),
      static_cast<unsigned long long>(result.block_loads),
      static_cast<unsigned long long>(result.block_evictions),
      result.peak_resident_bytes / 1024.0 / 1024.0);
  std::printf("walkers:          %llu finished, %llu parks, %llu spilled\n",
              static_cast<unsigned long long>(result.finished_walkers),
              static_cast<unsigned long long>(result.walker_parks),
              static_cast<unsigned long long>(result.spilled_walkers));
  std::printf("peak rss:         %.1f MiB\n",
              util::PeakRssBytes() / 1024.0 / 1024.0);
  const std::string invariants = store->CheckInvariants();
  std::printf("invariants:       %s\n",
              invariants.empty() ? "ok" : invariants.c_str());
  if (!args.paths_out.empty()) {
    WritePaths(args.paths_out, result.path_offsets, result.paths);
  }
  return invariants.empty() ? 0 : 1;
}

// Builds a sharded service and writes its durable base into --dir.
int Checkpoint(const Args& args) {
  if (args.dir.empty()) {
    std::fprintf(stderr, "checkpoint: --dir is required\n");
    return 2;
  }
  if (!ValidatePositive("--shards", args.shards)) {
    return 2;
  }
  graph::WeightedEdgeList edges;
  if (!LoadGraphArg(args, edges)) {
    return args.graph_path.empty() ? 2 : 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(edges);
  util::Timer build_timer;
  auto service = walk::MakeShardedWalkService(edges, n, args.shards, {},
                                              &util::ThreadPool::Global());
  std::printf("built %d-shard service over %u vertices / %zu edges in %.2fs\n",
              args.shards, n, edges.size(), build_timer.Seconds());
  walk::WalPersistenceOptions options;
  options.fsync_on_commit = args.fsync;
  options.compact_fraction = args.compact_fraction;
  util::Timer ckpt_timer;
  const walk::CheckpointResult result = service->AttachWal(args.dir, options);
  if (!result.ok) {
    std::fprintf(stderr, "checkpoint into %s failed\n", args.dir.c_str());
    return 1;
  }
  std::printf("checkpoint:       %s (%.1f MiB in %.2fs, %d shards)\n",
              args.dir.c_str(), result.bytes_written / 1024.0 / 1024.0,
              ckpt_timer.Seconds(), args.shards);
  const std::string invariants = service->CheckInvariants();
  std::printf("invariants:       %s\n",
              invariants.empty() ? "ok" : invariants.c_str());
  return invariants.empty() ? 0 : 1;
}

// Recovers a sharded service from --dir and reports the replay.
int Restore(const Args& args) {
  if (args.dir.empty()) {
    std::fprintf(stderr, "restore: --dir is required\n");
    return 2;
  }
  walk::RecoveryReport report;
  util::Timer recover_timer;
  auto service = walk::RecoverShardedWalkService(
      args.dir, {}, 0, &util::ThreadPool::Global(),
      &util::ThreadPool::Global(), {}, &report);
  const double seconds = recover_timer.Seconds();
  if (service == nullptr) {
    std::fprintf(stderr, "recovery from %s failed\n", args.dir.c_str());
    return 1;
  }
  std::printf(
      "recovered:        %d shards, %u vertices, %llu base edges in %.2fs\n",
      service->NumShards(), report.num_vertices,
      static_cast<unsigned long long>(report.base_edges), seconds);
  std::printf("wal replay:       %llu records / %llu updates%s\n",
              static_cast<unsigned long long>(report.wal_records_replayed),
              static_cast<unsigned long long>(report.wal_updates_replayed),
              report.wal_tail_truncated ? " (torn tail dropped)" : "");
  const std::string invariants = service->CheckInvariants();
  std::printf("invariants:       %s\n",
              invariants.empty() ? "ok" : invariants.c_str());
  if (!args.out_path.empty()) {
    // Merge the shards' canonical edge lists back into one vertex-major
    // list and dump it (binary edge-list format).
    graph::WeightedEdgeList merged;
    for (int s = 0; s < service->NumShards(); ++s) {
      service->Shard(s).Query([&](const core::BingoStore& store) {
        const auto shard_edges = core::CanonicalEdgeList(store.Graph());
        merged.insert(merged.end(), shard_edges.begin(), shard_edges.end());
        return 0;
      });
    }
    std::stable_sort(
        merged.begin(), merged.end(),
        [](const graph::WeightedEdge& a, const graph::WeightedEdge& b) {
          return a.src < b.src;  // stable: per-vertex order preserved
        });
    if (!graph::SaveWeightedEdgesBinary(args.out_path, merged)) {
      std::fprintf(stderr, "failed to write %s\n", args.out_path.c_str());
      return 1;
    }
    std::printf("edges dumped:     %zu -> %s\n", merged.size(),
                args.out_path.c_str());
  }
  return invariants.empty() ? 0 : 1;
}

// One machine-readable line for the perf-trajectory tooling (BENCH_*.json):
// printed last so scripts can take the final '{'-prefixed stdout line.
void PrintServeJson(const Args& args, double samples_per_sec,
                    double queries_per_sec, double p50_ms, double p99_ms,
                    double mean_ms, double max_ms, uint64_t batches,
                    double recovery_ms, uint64_t violations) {
  std::printf(
      "{\"bench\":\"serve-bench\",\"store\":\"%s\",\"shards\":%d,"
      "\"query_threads\":%d,\"pin\":%s,\"numa\":%s,"
      "\"throughput_samples_per_sec\":%.1f,\"queries_per_sec\":%.2f,"
      "\"update_p50_ms\":%.4f,\"update_p99_ms\":%.4f,"
      "\"update_mean_ms\":%.4f,\"update_max_ms\":%.4f,\"batches\":%llu,"
      "\"recovery_ms\":%.2f,\"consistency_violations\":%llu,"
      "\"peak_rss_bytes\":%llu}\n",
      args.store.c_str(), args.store == "sharded" ? args.shards : 1,
      args.threads, args.pin ? "true" : "false", args.numa ? "true" : "false",
      samples_per_sec, queries_per_sec, p50_ms, p99_ms, mean_ms, max_ms,
      static_cast<unsigned long long>(batches), recovery_ms,
      static_cast<unsigned long long>(violations),
      static_cast<unsigned long long>(util::PeakRssBytes()));
}

// The sharded serving path: per-shard replica pairs, optional coalescing
// batcher front-end, p50/p99 per-batch update latency.
int ServeBenchSharded(const Args& args, const graph::VertexId n,
                      const graph::UpdateWorkload& workload,
                      util::ThreadPool* pool) {
  util::Timer build_timer;
  auto service = walk::MakeShardedWalkService(
      workload.initial_edges, n, args.shards, PipelineConfig(args), pool, pool);
  std::printf(
      "serve-bench[sharded]: %u vertices, %zu initial edges, %d shards x 2 "
      "replicas built in %.2fs (%.1f MiB)\n",
      n, workload.initial_edges.size(), args.shards, build_timer.Seconds(),
      service->MemoryStats().TotalBytes() / 1024.0 / 1024.0);
  std::printf(
      "%d query threads vs 1 update thread, %d x %llu %s updates (%s)\n",
      args.threads, args.batches,
      static_cast<unsigned long long>(args.batch_size), args.kind.c_str(),
      args.batcher ? "single-edge submits through the batcher"
                   : "direct multi-shard batches");

  walk::WalPersistenceOptions persist;
  persist.fsync_on_commit = args.fsync;
  persist.compact_fraction = args.compact_fraction;
  if (!args.wal_dir.empty()) {
    util::Timer attach_timer;
    const walk::CheckpointResult base = service->AttachWal(args.wal_dir, persist);
    if (!base.ok) {
      std::fprintf(stderr, "failed to attach WAL at %s\n",
                   args.wal_dir.c_str());
      return 1;
    }
    std::printf("wal attached:     %s (base %.1f MiB in %.2fs, fsync %s)\n",
                args.wal_dir.c_str(), base.bytes_written / 1024.0 / 1024.0,
                attach_timer.Seconds(), args.fsync ? "per-batch" : "deferred");
  }

  walk::ShardedStressOptions options;
  options.query_threads = args.threads;
  options.batch_size = args.batch_size;
  options.walkers_per_query = args.walkers == 0 ? 1024 : args.walkers;
  options.walk_length = args.length;
  options.seed = args.seed;
  options.use_batcher = args.batcher;
  const auto report =
      walk::RunShardedServiceStress(*service, workload.updates, options);

  std::printf("\nqueries:          %llu (%.1f/s)\n",
              static_cast<unsigned long long>(report.queries),
              report.queries / report.wall_seconds);
  std::printf("samples served:   %llu (%.2fM samples/s)\n",
              static_cast<unsigned long long>(report.walk_steps),
              report.SamplesPerSecond() / 1e6);
  std::printf(
      "update latency:   p50 %.2fms, p99 %.2fms, mean %.2fms, max %.2fms "
      "(%llu batches)\n",
      report.UpdateSecondsQuantile(0.50) * 1e3,
      report.UpdateSecondsQuantile(0.99) * 1e3,
      report.MeanUpdateSeconds() * 1e3, report.MaxUpdateSeconds() * 1e3,
      static_cast<unsigned long long>(report.batches));
  const auto stats = service->Stats();
  std::printf("shard epochs:     sum %llu, min %llu, max %llu (%d shards)\n",
              static_cast<unsigned long long>(stats.epoch),
              static_cast<unsigned long long>(stats.min_shard_epoch),
              static_cast<unsigned long long>(stats.max_shard_epoch),
              stats.num_shards);
  std::printf("consistency:      %llu violations\n",
              static_cast<unsigned long long>(report.inconsistent_snapshots));
  const std::string invariants = service->CheckInvariants();
  std::printf("invariants:       %s\n",
              invariants.empty() ? "ok" : invariants.c_str());

  double recovery_ms = 0.0;
  if (!args.wal_dir.empty()) {
    // Seal the stream with an incremental checkpoint, then measure a full
    // recovery from disk — the crash-restart cost a deployment would pay.
    util::Timer ckpt_timer;
    const walk::CheckpointResult ckpt = service->Checkpoint();
    std::printf("final checkpoint: %s, %.2f MiB in %.3fs (%s)\n",
                ckpt.ok ? "ok" : "FAILED",
                ckpt.bytes_written / 1024.0 / 1024.0, ckpt_timer.Seconds(),
                ckpt.compacted ? "compacted" : "incremental");
    walk::RecoveryReport recovery;
    util::Timer recover_timer;
    // Recovery must present the same config: the snapshot fingerprint now
    // covers the bias pipeline, so a mismatched decay would (correctly)
    // refuse to load.
    auto recovered = walk::RecoverShardedWalkService(
        args.wal_dir, PipelineConfig(args), 0, pool, pool, persist, &recovery);
    recovery_ms = recover_timer.Seconds() * 1e3;
    if (recovered == nullptr) {
      std::fprintf(stderr, "recovery from %s failed\n", args.wal_dir.c_str());
      return 1;
    }
    std::printf(
        "recovery:         %.2fs (%llu base edges + %llu wal records / %llu "
        "updates replayed)\n",
        recovery_ms / 1e3,
        static_cast<unsigned long long>(recovery.base_edges),
        static_cast<unsigned long long>(recovery.wal_records_replayed),
        static_cast<unsigned long long>(recovery.wal_updates_replayed));
    const std::string recovered_invariants = recovered->CheckInvariants();
    std::printf("recovered state:  %s\n", recovered_invariants.empty()
                                              ? "ok"
                                              : recovered_invariants.c_str());
    if (!ckpt.ok || !recovered_invariants.empty()) {
      return 1;
    }
  }
  if (args.json) {
    PrintServeJson(args, report.SamplesPerSecond(),
                   report.queries / report.wall_seconds,
                   report.UpdateSecondsQuantile(0.50) * 1e3,
                   report.UpdateSecondsQuantile(0.99) * 1e3,
                   report.MeanUpdateSeconds() * 1e3,
                   report.MaxUpdateSeconds() * 1e3, report.batches,
                   recovery_ms, report.inconsistent_snapshots);
  }
  return report.inconsistent_snapshots == 0 && invariants.empty() ? 0 : 1;
}

// --------------------------------------------------- open-loop serving --

// One client thread's slice of the open-loop run. Arrivals are an
// independent Poisson process at rate qps/threads (their superposition is
// Poisson at the full offered rate); latency is measured from the
// SCHEDULED arrival, so queuing delay from an overloaded service is part
// of the number rather than silently omitted.
struct OpenLoopThreadResult {
  util::LatencyHistogram latency;
  uint64_t queries = 0;
};

// `issue` submits one query and returns a std::future<walk::WalkResult>;
// the client never blocks on a result while arrivals are due, which is
// what makes the loop open rather than closed.
template <typename IssueFn>
OpenLoopThreadResult OpenLoopClient(const Args& args, int thread,
                                    std::chrono::steady_clock::time_point t0,
                                    IssueFn&& issue) {
  using Clock = std::chrono::steady_clock;
  const auto to_duration = [](double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  };
  OpenLoopThreadResult result;
  util::Rng arrivals = util::Rng::ForStream(args.seed ^ 0x6f70656e6c6f6fULL,
                                            static_cast<uint64_t>(thread));
  const double rate = args.qps / std::max(args.threads, 1);
  const auto next_delay = [&] {
    return -std::log(1.0 - arrivals.NextUnit()) / rate;
  };
  double next_arrival_s = next_delay();
  uint64_t issued = 0;
  std::deque<std::pair<Clock::time_point, std::future<walk::WalkResult>>>
      pending;
  while (next_arrival_s < args.duration || !pending.empty()) {
    const auto next_arrival = t0 + to_duration(next_arrival_s);
    if (next_arrival_s < args.duration && Clock::now() >= next_arrival) {
      walk::WalkConfig cfg;
      cfg.num_walkers = args.walkers == 0 ? 1024 : args.walkers;
      cfg.walk_length = args.length;
      cfg.seed = args.seed + static_cast<uint64_t>(thread) * 1'000'003 + issued;
      pending.emplace_back(next_arrival, issue(cfg));
      ++issued;
      next_arrival_s += next_delay();
      continue;
    }
    if (pending.empty()) {
      std::this_thread::sleep_until(next_arrival);
      continue;
    }
    // Drain the oldest in-flight query while waiting out the gap; wake in
    // time for the next arrival so submission never falls behind on our
    // account.
    const auto wake = next_arrival_s < args.duration
                          ? next_arrival
                          : Clock::now() + to_duration(0.010);
    if (pending.front().second.wait_until(wake) == std::future_status::ready) {
      pending.front().second.get();
      result.latency.RecordSeconds(std::chrono::duration<double>(
                                       Clock::now() - pending.front().first)
                                       .count());
      pending.pop_front();
    }
  }
  result.queries = issued;
  return result;
}

template <typename Service>
int RunOpenLoopBench(const Args& args, Service& service,
                     util::ThreadPool* pool) {
  const bool batched = args.front == "batched";
  const bool index_front = args.front == "index";
  std::optional<walk::QueryBatcherT<Service>> batcher;
  if (batched) {
    batcher.emplace(service, walk::QueryBatcherOptions{}, pool);
  }
  std::optional<walk::WalkIndexServiceT<Service>> index;
  if (index_front) {
    typename walk::WalkIndexServiceT<Service>::Options index_options;
    index_options.corpus.walk_length = args.length;
    index_options.corpus.seed = args.seed;
    index.emplace(service, index_options, pool);
    const walk::WalkIndexStats istats = index->Stats();
    std::printf("index front: corpus %llu walks x %u steps generated in "
                "%.2fs (%.1f MiB)\n",
                static_cast<unsigned long long>(istats.corpus_walks),
                args.length, istats.generate_seconds,
                static_cast<double>(istats.corpus_memory_bytes) / (1u << 20));
  }
  std::printf(
      "open-loop: %d clients, %.0f qps offered for %.1fs, front %s, "
      "%llu walkers x %u steps per query, simd %s\n",
      args.threads, args.qps, args.duration, args.front.c_str(),
      static_cast<unsigned long long>(args.walkers == 0 ? 1024 : args.walkers),
      args.length, util::ToString(util::ActiveSimdLevel()));

  std::vector<OpenLoopThreadResult> slices(args.threads);
  util::Timer wall;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(args.threads);
    for (int t = 0; t < args.threads; ++t) {
      clients.emplace_back([&, t] {
        slices[t] = OpenLoopClient(args, t, t0, [&](const walk::WalkConfig& cfg) {
          if (batched) {
            walk::WalkQuery query;
            query.cfg = cfg;
            return batcher->Submit(query);
          }
          std::promise<walk::WalkResult> done;
          std::future<walk::WalkResult> future = done.get_future();
          if (index_front) {
            // Index front-end: the query is a read of stored walks (the
            // rotating window keeps requests spread over the corpus); no
            // sampling happens on the query path.
            done.set_value(index->QueryWalks(cfg.seed, cfg.num_walkers));
          } else {
            // Direct front-end: one service query per request, same pool.
            done.set_value(service.DeepWalk(cfg, pool));
          }
          return future;
        });
      });
    }
    for (auto& c : clients) {
      c.join();
    }
  }
  const double wall_seconds = wall.Seconds();

  util::LatencyHistogram latency;
  uint64_t queries = 0;
  for (const auto& slice : slices) {
    latency.Merge(slice.latency);
    queries += slice.queries;
  }
  const double achieved = queries / wall_seconds;
  std::printf("queries:          %llu in %.2fs (offered %.0f/s, achieved "
              "%.1f/s)\n",
              static_cast<unsigned long long>(queries), wall_seconds, args.qps,
              achieved);
  std::printf(
      "query latency:    p50 %.2fms, p90 %.2fms, p99 %.2fms, p999 %.2fms\n",
      latency.QuantileSeconds(0.50) * 1e3, latency.QuantileSeconds(0.90) * 1e3,
      latency.QuantileSeconds(0.99) * 1e3,
      latency.QuantileSeconds(0.999) * 1e3);
  std::printf("                  mean %.2fms, max %.2fms\n",
              latency.MeanSeconds() * 1e3, latency.MaxSeconds() * 1e3);
  double coalesce = 0.0;
  if (batched) {
    const auto stats = batcher->Stats();
    coalesce = stats.CoalesceRatio();
    std::printf(
        "batcher:          %llu dispatches (%llu size, %llu time), %llu "
        "fused groups, %.2f queries/dispatch, max batch %llu\n",
        static_cast<unsigned long long>(stats.dispatches),
        static_cast<unsigned long long>(stats.size_dispatches),
        static_cast<unsigned long long>(stats.time_dispatches),
        static_cast<unsigned long long>(stats.fused_groups), coalesce,
        static_cast<unsigned long long>(stats.max_batch));
  }
  if (args.json) {
    std::printf(
        "{\"bench\":\"serve-open-loop\",\"store\":\"%s\",\"shards\":%d,"
        "\"front\":\"%s\",\"clients\":%d,\"simd\":\"%s\","
        "\"qps_offered\":%.1f,\"qps_achieved\":%.1f,\"queries\":%llu,"
        "\"p50_ms\":%.4f,\"p90_ms\":%.4f,\"p99_ms\":%.4f,\"p999_ms\":%.4f,"
        "\"mean_ms\":%.4f,\"max_ms\":%.4f,\"coalesce\":%.2f}\n",
        args.store.c_str(), args.store == "sharded" ? args.shards : 1,
        args.front.c_str(), args.threads,
        util::ToString(util::ActiveSimdLevel()), args.qps, achieved,
        static_cast<unsigned long long>(queries),
        latency.QuantileSeconds(0.50) * 1e3, latency.QuantileSeconds(0.90) * 1e3,
        latency.QuantileSeconds(0.99) * 1e3,
        latency.QuantileSeconds(0.999) * 1e3, latency.MeanSeconds() * 1e3,
        latency.MaxSeconds() * 1e3, coalesce);
  }
  return 0;
}

// Open-loop entry: builds the requested service over the full graph (no
// update stream; this benchmark isolates the read-serving path).
int ServeOpenLoop(const Args& args) {
  if (args.front != "batched" && args.front != "direct" &&
      args.front != "index") {
    std::fprintf(stderr, "--front must be batched, direct, or index (got %s)\n",
                 args.front.c_str());
    return 2;
  }
  graph::WeightedEdgeList edges;
  if (!LoadGraphArg(args, edges)) {
    return args.graph_path.empty() ? 2 : 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(edges);
  util::PoolOptions pool_options;
  pool_options.pin_threads = args.pin;
  pool_options.numa_interleave = args.numa;
  util::ThreadPool serve_pool(pool_options);
  PrintExecutorBanner(args, serve_pool);
  util::Timer build_timer;
  if (args.store == "sharded") {
    auto service = walk::MakeShardedWalkService(edges, n, args.shards, {},
                                                &serve_pool, &serve_pool);
    std::printf("serve-bench[sharded]: %u vertices, %zu edges, %d shards "
                "built in %.2fs\n",
                n, edges.size(), args.shards, build_timer.Seconds());
    return RunOpenLoopBench(args, *service, &serve_pool);
  }
  auto service =
      walk::MakeWalkService(edges, n, {}, &serve_pool, &serve_pool);
  std::printf("serve-bench: %u vertices, %zu edges built in %.2fs\n", n,
              edges.size(), build_timer.Seconds());
  return RunOpenLoopBench(args, *service, &serve_pool);
}

// serve-bench --store ooc: run the standard stress on an in-memory
// WAL-journaled service, seal it with a checkpoint, tear it down, then
// recover OUT OF CORE from the durability dir — the base snapshot streams
// record by record into DIR/base.csr (core::StreamSnapshotEdges, never a
// materialized edge list) and two tiered replicas mount it under the
// --memory-budget. The recovered service then serves queries and absorbs
// further updates (promoting the base vertices they touch).
int ServeBenchOoc(const Args& args, const graph::VertexId n,
                  const graph::UpdateWorkload& workload,
                  util::ThreadPool* pool) {
  if (args.decay < 1.0) {
    std::fprintf(stderr,
                 "--store ooc requires the identity bias pipeline (no "
                 "--decay): base biases are pre-composed into the CSR\n");
    return 2;
  }
  util::Timer build_timer;
  auto service = walk::MakeWalkService(workload.initial_edges, n,
                                       core::BingoConfig{}, pool, pool);
  std::printf(
      "serve-bench[ooc]: %u vertices, %zu initial edges, 2 replicas built "
      "in %.2fs\n",
      n, workload.initial_edges.size(), build_timer.Seconds());

  walk::WalPersistenceOptions persist;
  persist.fsync_on_commit = args.fsync;
  persist.compact_fraction = args.compact_fraction;
  util::Timer attach_timer;
  const walk::CheckpointResult base = service->AttachWal(args.wal_dir, persist);
  if (!base.ok) {
    std::fprintf(stderr, "failed to attach WAL at %s\n", args.wal_dir.c_str());
    return 1;
  }
  std::printf("wal attached:     %s (base %.1f MiB in %.2fs)\n",
              args.wal_dir.c_str(), base.bytes_written / 1024.0 / 1024.0,
              attach_timer.Seconds());

  walk::ServiceStressOptions options;
  options.query_threads = args.threads;
  options.batch_size = args.batch_size;
  options.walkers_per_query = args.walkers == 0 ? 1024 : args.walkers;
  options.walk_length = args.length;
  options.seed = args.seed;
  const auto report =
      walk::RunWalkServiceStress(*service, workload.updates, options);
  std::printf("\nqueries:          %llu (%.1f/s)\n",
              static_cast<unsigned long long>(report.queries),
              report.queries / report.wall_seconds);
  std::printf("samples served:   %llu (%.2fM samples/s)\n",
              static_cast<unsigned long long>(report.walk_steps),
              report.SamplesPerSecond() / 1e6);
  std::printf("consistency:      %llu violations\n",
              static_cast<unsigned long long>(report.inconsistent_snapshots));

  // Seal: the WAL-journaled stream becomes the durable state.
  const walk::CheckpointResult ckpt = service->Checkpoint();
  std::printf("final checkpoint: %s (%.1f MiB, %s)\n",
              ckpt.ok ? "ok" : "FAILED",
              ckpt.bytes_written / 1024.0 / 1024.0,
              ckpt.compacted ? "compacted" : "incremental");
  if (!ckpt.ok) {
    return 1;
  }
  service.reset();  // the recovery below must stand alone

  walk::OocServiceOptions ooc_options;
  ooc_options.store.memory_budget_bytes = args.memory_budget;
  ooc_options.csr_block_bytes = args.block_bytes;
  ooc_options.wal = persist;
  walk::RecoveryReport recovery;
  std::string error;
  util::Timer recover_timer;
  auto ooc = walk::RecoverOocWalkService(args.wal_dir, core::BingoConfig{},
                                         ooc_options, pool, pool, &recovery,
                                         &error);
  const double recovery_ms = recover_timer.Seconds() * 1e3;
  if (ooc == nullptr) {
    std::fprintf(stderr, "ooc recovery from %s failed: %s\n",
                 args.wal_dir.c_str(), error.c_str());
    return 1;
  }
  std::printf(
      "ooc recovery:     %.2fs streamed (%llu base edges -> base.csr, "
      "%llu wal records / %llu updates replayed, budget %llu bytes/replica)\n",
      recovery_ms / 1e3, static_cast<unsigned long long>(recovery.base_edges),
      static_cast<unsigned long long>(recovery.wal_records_replayed),
      static_cast<unsigned long long>(recovery.wal_updates_replayed),
      static_cast<unsigned long long>(args.memory_budget));

  // Verify the recovered service end to end: a walk query and one more
  // journaled update batch (promoting the base vertices it touches).
  walk::WalkConfig cfg;
  cfg.num_walkers = options.walkers_per_query;
  cfg.walk_length = args.length;
  cfg.seed = args.seed;
  const walk::WalkResult walked = ooc->DeepWalk(cfg, pool);
  graph::UpdateList extra(
      workload.updates.begin(),
      workload.updates.begin() +
          static_cast<std::ptrdiff_t>(
              std::min<std::size_t>(args.batch_size, workload.updates.size())));
  ooc->ApplyBatch(extra);
  const auto tiered_stats = ooc->Query([&](const walk::TieredStore& s) {
    struct {
      uint64_t promoted;
      core::BlockCacheStats cache;
    } out{s.PromotedVertices(), s.CacheStats()};
    return out;
  });
  std::printf(
      "ooc serving:      %llu walk steps, %llu vertices promoted by "
      "post-recovery updates, %llu block loads, %.1f MiB resident\n",
      static_cast<unsigned long long>(walked.total_steps),
      static_cast<unsigned long long>(tiered_stats.promoted),
      static_cast<unsigned long long>(tiered_stats.cache.loads),
      tiered_stats.cache.resident_bytes / 1024.0 / 1024.0);
  const std::string invariants = ooc->CheckInvariants();
  std::printf("recovered state:  %s\n",
              invariants.empty() ? "ok" : invariants.c_str());
  std::printf("peak rss:         %.1f MiB\n",
              util::PeakRssBytes() / 1024.0 / 1024.0);
  if (args.json) {
    PrintServeJson(args, report.SamplesPerSecond(),
                   report.queries / report.wall_seconds,
                   report.UpdateSecondsQuantile(0.50) * 1e3,
                   report.UpdateSecondsQuantile(0.99) * 1e3,
                   report.MeanUpdateSeconds() * 1e3,
                   report.update_seconds_max * 1e3, report.batches,
                   recovery_ms, report.inconsistent_snapshots);
  }
  return report.inconsistent_snapshots == 0 && invariants.empty() ? 0 : 1;
}

int ServeBench(const Args& args) {
  if (args.store != "bingo" && args.store != "sharded" &&
      args.store != "ooc") {
    std::fprintf(
        stderr,
        "serve-bench supports --store bingo, sharded, or ooc (got %s)\n",
        args.store.c_str());
    return 2;
  }
  if (args.store == "sharded" &&
      !ValidatePositive("--shards", args.shards)) {
    return 2;
  }
  if (args.batcher && args.store != "sharded") {
    std::fprintf(stderr, "--batcher requires --store sharded\n");
    return 2;
  }
  if (!args.wal_dir.empty() && args.store == "bingo") {
    std::fprintf(stderr, "--wal requires --store sharded or ooc\n");
    return 2;
  }
  if (args.store == "ooc" && args.wal_dir.empty()) {
    std::fprintf(stderr,
                 "--store ooc needs --wal DIR (the durability directory the "
                 "out-of-core recovery streams from)\n");
    return 2;
  }
  if (args.store == "ooc" && args.open_loop) {
    std::fprintf(stderr, "--open-loop does not support --store ooc\n");
    return 2;
  }
  if (args.app != "deepwalk") {
    std::fprintf(stderr,
                 "serve-bench queries are deepwalk only (got --app %s)\n",
                 args.app.c_str());
    return 2;
  }
  if (!ValidatePositive("--threads", args.threads) ||
      !ValidatePositive("--batches", args.batches) ||
      !ValidatePositive("--batch-size",
                        static_cast<long long>(args.batch_size))) {
    return 2;  // fail fast, before paying for the graph load
  }
  if (args.open_loop) {
    return ServeOpenLoop(args);
  }
  graph::UpdateWorkloadParams params;
  params.batch_size = args.batch_size;
  params.num_batches = args.batches;
  if (args.kind == "insert") {
    params.kind = graph::UpdateKind::kInsertion;
  } else if (args.kind == "delete") {
    params.kind = graph::UpdateKind::kDeletion;
  } else if (args.kind == "mixed") {
    params.kind = graph::UpdateKind::kMixed;
  } else {
    std::fprintf(stderr, "unknown update kind: %s\n", args.kind.c_str());
    return 2;
  }
  graph::WeightedEdgeList all_edges;
  if (!LoadGraphArg(args, all_edges)) {
    return args.graph_path.empty() ? 2 : 1;
  }
  const graph::VertexId n = graph::ImpliedVertexCount(all_edges);
  util::Rng workload_rng(args.seed);
  auto workload = graph::BuildUpdateWorkload(all_edges, params, workload_rng);
  if (args.advance_every > 0) {
    // Interleave logical-clock ticks into the stream: one AdvanceTime every
    // K batches' worth of updates. Each tick rides an ordinary batch, so it
    // is journaled, broadcast to every shard, and (with --decay < 1)
    // re-buckets all stored biases while query threads keep serving.
    const uint64_t stride =
        static_cast<uint64_t>(args.advance_every) * args.batch_size;
    graph::UpdateList interleaved;
    interleaved.reserve(workload.updates.size() +
                        workload.updates.size() / std::max<uint64_t>(1, stride) +
                        1);
    uint32_t next_epoch = 0;
    for (std::size_t i = 0; i < workload.updates.size(); ++i) {
      if (i > 0 && i % stride == 0) {
        interleaved.push_back(graph::MakeAdvanceTime(++next_epoch));
      }
      interleaved.push_back(workload.updates[i]);
    }
    workload.updates = std::move(interleaved);
    std::printf("temporal ticks:   AdvanceTime every %d batches "
                "(decay %.4f, %u epochs total)\n",
                args.advance_every, args.decay, next_epoch);
  }
  // The engine/update executor: hardware-concurrency workers, shaped by
  // --pin/--numa (query-thread count stays a separate knob).
  util::PoolOptions pool_options;
  pool_options.pin_threads = args.pin;
  pool_options.numa_interleave = args.numa;
  util::ThreadPool serve_pool(pool_options);
  PrintExecutorBanner(args, serve_pool);
  if (args.store == "sharded") {
    return ServeBenchSharded(args, n, workload, &serve_pool);
  }
  if (args.store == "ooc") {
    return ServeBenchOoc(args, n, workload, &serve_pool);
  }

  // The pool builds the replicas and then parallelizes each batch's
  // replica rebuilds; the stress query threads deliberately run poolless,
  // so the writer has the pool to itself.
  util::Timer build_timer;
  auto service = walk::MakeWalkService(workload.initial_edges, n,
                                       PipelineConfig(args), &serve_pool,
                                       &serve_pool);
  std::printf(
      "serve-bench: %u vertices, %zu initial edges, 2 replicas built in "
      "%.2fs (%.1f MiB)\n",
      n, workload.initial_edges.size(), build_timer.Seconds(),
      service->MemoryStats().TotalBytes() / 1024.0 / 1024.0);
  std::printf("%d query threads vs 1 update thread, %d x %llu %s updates\n",
              args.threads, args.batches,
              static_cast<unsigned long long>(args.batch_size),
              args.kind.c_str());

  walk::ServiceStressOptions options;
  options.query_threads = args.threads;
  options.batch_size = args.batch_size;
  options.walkers_per_query = args.walkers == 0 ? 1024 : args.walkers;
  options.walk_length = args.length;
  options.seed = args.seed;
  const auto report =
      walk::RunWalkServiceStress(*service, workload.updates, options);

  std::printf("\nqueries:          %llu (%.1f/s)\n",
              static_cast<unsigned long long>(report.queries),
              report.queries / report.wall_seconds);
  std::printf("samples served:   %llu (%.2fM samples/s)\n",
              static_cast<unsigned long long>(report.walk_steps),
              report.SamplesPerSecond() / 1e6);
  std::printf("update latency:   mean %.2fms, max %.2fms (%llu batches)\n",
              report.MeanUpdateSeconds() * 1e3,
              report.update_seconds_max * 1e3,
              static_cast<unsigned long long>(report.batches));
  std::printf("epochs observed:  [%llu, %llu]\n",
              static_cast<unsigned long long>(report.min_epoch_observed),
              static_cast<unsigned long long>(report.max_epoch_observed));
  std::printf("consistency:      %llu violations\n",
              static_cast<unsigned long long>(report.inconsistent_snapshots));
  const std::string invariants = service->CheckInvariants();
  std::printf("invariants:       %s\n",
              invariants.empty() ? "ok" : invariants.c_str());
  if (args.json) {
    PrintServeJson(args, report.SamplesPerSecond(),
                   report.queries / report.wall_seconds,
                   report.UpdateSecondsQuantile(0.50) * 1e3,
                   report.UpdateSecondsQuantile(0.99) * 1e3,
                   report.MeanUpdateSeconds() * 1e3,
                   report.update_seconds_max * 1e3, report.batches,
                   /*recovery_ms=*/0.0, report.inconsistent_snapshots);
  }
  return report.inconsistent_snapshots == 0 && invariants.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, args)) {
    PrintUsage();
    return 2;
  }
  if (args.command == "generate") {
    return Generate(args);
  }
  if (args.command == "walk") {
    return Walk(args);
  }
  if (args.command == "stats") {
    return Stats(args);
  }
  if (args.command == "build-csr") {
    return BuildCsr(args);
  }
  if (args.command == "serve-bench") {
    return ServeBench(args);
  }
  if (args.command == "checkpoint") {
    return Checkpoint(args);
  }
  if (args.command == "restore") {
    return Restore(args);
  }
  if (args.command == "--help" || args.command == "-h" ||
      args.command == "help") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  PrintUsage();
  return 2;
}
